//===- gc/Collector.cpp - Stop-and-copy generational collector -*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "gc/Collector.h"

#include <cstring>

#include "gc/ParallelScavenge.h"
#include "gc/Roots.h"
#include "gc/ScopedGeneration.h"
#include "gc/Tconc.h"
#include "gc/telemetry/Telemetry.h"
#include "heap/SharedImmutableSpace.h"

using namespace gengc;

void Collector::run(unsigned G) {
  GcTelemetry &Tel = H.Telemetry;
  const uint64_t StartNanos = Tel.now();
  // Phase timers chain through this cursor so the phase spans tile the
  // pause exactly (see PhaseTimer).
  uint64_t PhaseCursor = StartNanos;
  H.InGc = true;

  const unsigned Oldest = H.oldestGeneration();
  GENGC_ASSERT(G <= Oldest, "collected generation out of range");
  T = std::min(G + 1, Oldest);
  // Totals.Collections is bumped by accumulate() at the end, so the
  // in-flight collection — which events recorded mid-pause must name —
  // is one past it.
  S.CollectionIndex = H.Totals.Collections + 1;
  S.CollectedGeneration = G;
  S.TargetGeneration = T;

  if (Tel.TraceEnabled) {
    GcEvent E;
    E.Type = GcEventType::CollectionBegin;
    E.TimeNanos = StartNanos;
    E.A = S.CollectionIndex;
    E.Collection = static_cast<uint32_t>(S.CollectionIndex);
    E.Generation = static_cast<uint8_t>(G);
    Tel.emit(E);
  }

  {
    PhaseTimer PT(Tel, S, GcPhase::Setup, PhaseCursor);
    detachFromSpace(G);

    // Record the sweep start of every context copies can land in:
    // generations 0..T at every tenure age. Contexts of the collected
    // generations were just detached (empty, cursor {0,0}); anything
    // already in generation T (when T > G) is an older object covered by
    // the remembered sets, so its sweep starts at the current frontier.
    for (unsigned Sp = 0; Sp != NumSpaces; ++Sp)
      for (unsigned Gen = 0; Gen <= T; ++Gen)
        for (unsigned Age = 0; Age != H.Cfg.TenureCopies; ++Age) {
          SpaceContext &Ctx = H.Contexts[Sp][Gen][Age];
          if (Ctx.runs().empty()) {
            Cursors[Sp][Gen][Age] = SweepCursor{0, 0};
          } else {
            size_t Last = Ctx.runs().size() - 1;
            Cursors[Sp][Gen][Age] =
                SweepCursor{Last, Ctx.usedWordsOf(H.Segments, Last)};
          }
          if (Sp == static_cast<unsigned>(SpaceKind::WeakPair))
            WeakScanStarts[Gen][Age] = Cursors[Sp][Gen][Age];
        }

    // Stale remembered entries of collected generations refer to
    // from-space containers; their survivors are rescanned by the sweep.
    for (unsigned I = 0; I <= G; ++I) {
      H.Remembered[I].clear();
      H.WeakRemembered[I].clear();
    }
  }

  // Open request scopes force the exact serial path: scope objects are
  // scanned as uncollected roots and the escape sets are plain
  // PtrHashSets, neither of which is prepared for worker concurrency.
  // Request extents are short-lived, so a scope rarely spans an
  // automatic collection in the first place.
  const unsigned Workers = H.ScopeStack.empty() ? H.gcThreads() : 1;
  if (Workers >= 2) {
    // Multi-worker scavenge: roots, remembered sets, and the Cheney
    // sweep run as a work-stealing fixpoint over per-worker to-space
    // lanes. Everything after it (guardians, finalizers, weak pairs,
    // symbol table) stays serial on this thread, over merged state, so
    // resurrection order and tconc contents are schedule-independent.
    ParallelScavenge PS(*this, G, Workers);
    PS.run(PhaseCursor);
  } else {
    S.GcWorkersUsed = 1;
    {
      PhaseTimer PT(Tel, S, GcPhase::Roots, PhaseCursor);
      forwardRoots();
      if (!H.ScopeStack.empty())
        scanOpenScopes();
    }
    {
      PhaseTimer PT(Tel, S, GcPhase::RememberedSets, PhaseCursor);
      processRememberedSets(G);
    }
    {
      PhaseTimer PT(Tel, S, GcPhase::Copy, PhaseCursor);
      kleeneSweep();
    }
  }
  {
    PhaseTimer PT(Tel, S, GcPhase::Guardians, PhaseCursor);
    processGuardians(G);
  }

  std::vector<uint32_t> ThunkQueue;
  {
    PhaseTimer PT(Tel, S, GcPhase::Finalizers, PhaseCursor);
    processFinalizeLists(G, ThunkQueue);
  }
  {
    PhaseTimer PT(Tel, S, GcPhase::WeakPairs, PhaseCursor);
    weakPairPass(G);
  }
  {
    PhaseTimer PT(Tel, S, GcPhase::SymbolTable, PhaseCursor);
    updateSymbolTable();
  }
  {
    PhaseTimer PT(Tel, S, GcPhase::Reclaim, PhaseCursor);
    // The profiler sweep and the escape-set fixup must read forwarding
    // markers, so they run while from-space is still intact.
    if (H.Profiler.enabled())
      sweepAllocProfiler();
    if (!H.ScopeStack.empty())
      fixupScopeEscapes();
    freeFromSpace();
  }

  H.BytesSinceGc = 0;
  H.GcPending = false;
  H.InGc = false;

  // The thunks are queued and counted now (so the totals see them) but
  // run after the statistics are published.
  S.FinalizerThunksRun = ThunkQueue.size();
  S.DurationNanos = Tel.now() - StartNanos;
  Tel.recordPause({StartNanos, S.DurationNanos});

  // A serial scavenge is one worker copying everything: report it as
  // perfectly balanced so workerImbalanceRatio() reads 1.0, matching
  // what the parallel accounting would say about a one-lane run.
  if (S.GcWorkersUsed <= 1)
    S.MaxWorkerBytesCopied = S.BytesCopied;

  // Mutator barrier traffic in the window since the previous
  // collection: deltas of the heap's monotonic counters.
  S.BarriersExecuted = H.BarriersExecutedTotal - H.BarriersExecutedAtGc;
  S.BarriersElided = H.BarriersElidedTotal - H.BarriersElidedAtGc;
  H.BarriersExecutedAtGc = H.BarriersExecutedTotal;
  H.BarriersElidedAtGc = H.BarriersElidedTotal;

  if (Tel.TraceEnabled) {
    if (S.ObjectsPromoted != 0) {
      GcEvent E;
      E.Type = GcEventType::TenurePromotion;
      E.TimeNanos = StartNanos + S.DurationNanos;
      E.A = S.ObjectsPromoted;
      E.B = S.BytesCopied;
      E.Collection = static_cast<uint32_t>(S.CollectionIndex);
      E.Generation = static_cast<uint8_t>(G);
      Tel.emit(E);
    }
    GcEvent E;
    E.Type = GcEventType::CollectionEnd;
    E.TimeNanos = StartNanos + S.DurationNanos;
    E.DurNanos = S.DurationNanos;
    E.A = S.BytesCopied;
    E.B = S.SegmentsFreed;
    E.Collection = static_cast<uint32_t>(S.CollectionIndex);
    E.Generation = static_cast<uint8_t>(G);
    E.Detail = static_cast<uint16_t>(T);
    Tel.emit(E);
  }

  H.Totals.accumulate(S, Oldest);
  GENGC_ASSERT(S.CollectionIndex == H.Totals.Collections,
               "collection index drifted from the totals");
  H.LastStats = S;

  // Dickey-style finalization thunks run "as part of the garbage
  // collection process and must not cause another garbage collection":
  // allocation stays disabled while they run.
  if (!ThunkQueue.empty()) {
    H.NoAllocMode = true;
    for (uint32_t Id : ThunkQueue)
      H.FinalizerThunks[Id]();
    H.NoAllocMode = false;
  }
}

//===----------------------------------------------------------------------===//
// From-space management.
//===----------------------------------------------------------------------===//

void Collector::detachFromSpace(unsigned G) {
  for (unsigned Sp = 0; Sp != NumSpaces; ++Sp) {
    for (unsigned I = 0; I <= G; ++I) {
      for (unsigned Age = 0; Age != H.Cfg.TenureCopies; ++Age) {
        std::vector<SegmentRun> Runs =
            H.Contexts[Sp][I][Age].takeRuns(H.Segments);
        for (const SegmentRun &R : Runs) {
          for (uint32_t Seg = R.FirstSegment;
               Seg != R.FirstSegment + R.SegmentCount; ++Seg)
            H.Segments.infoAt(Seg).Flags |= SegmentInfo::FlagFromSpace;
          // takeRuns sealed every run, so UsedWords is the occupied
          // extent; the sum is the denominator of this collection's
          // survival rate.
          S.BytesInFromSpace +=
              static_cast<uint64_t>(R.UsedWords) * sizeof(uintptr_t);
        }
        FromRuns[Sp].insert(FromRuns[Sp].end(), Runs.begin(), Runs.end());
      }
    }
  }

  // Adopted donation runs live in the exchange arena, tagged with the
  // oldest generation: a full collection evacuates their survivors into
  // the private arena like any other old objects, after which the
  // exchange segments are returned to the process pool.
  if (G == H.oldestGeneration()) {
    Arena &EA = H.Exchange->arena();
    for (unsigned Sp = 0; Sp != NumSpaces; ++Sp) {
      for (const SegmentRun &R : H.AdoptedRuns[Sp]) {
        for (uint32_t Seg = R.FirstSegment;
             Seg != R.FirstSegment + R.SegmentCount; ++Seg)
          EA.infoAt(Seg).Flags |= SegmentInfo::FlagFromSpace;
        S.BytesInFromSpace +=
            static_cast<uint64_t>(R.UsedWords) * sizeof(uintptr_t);
      }
      FromExchangeRuns[Sp].insert(FromExchangeRuns[Sp].end(),
                                  H.AdoptedRuns[Sp].begin(),
                                  H.AdoptedRuns[Sp].end());
      H.AdoptedRuns[Sp].clear();
    }
  }
}

void Collector::freeFromSpace() {
  for (unsigned Sp = 0; Sp != NumSpaces; ++Sp)
    for (const SegmentRun &R : FromRuns[Sp]) {
      if (H.Cfg.PoisonFromSpace) {
        // Overwrite the evacuated run so any stale pointer into it reads
        // the poison pattern (an invalid Value tag and an unmapped
        // address when dereferenced) instead of plausible dead objects.
        // rootcheck:allow(segment-base) — collector owns from-space.
        uintptr_t *Base = H.Segments.segmentBase(R.FirstSegment);
        const size_t RunWords =
            static_cast<size_t>(R.SegmentCount) * SegmentWords;
        for (size_t I = 0; I != RunWords; ++I)
          Base[I] = FromSpacePoisonPattern;
      }
      H.Segments.freeRun(R.FirstSegment, R.SegmentCount);
      S.SegmentsFreed += R.SegmentCount;
    }

  // Evacuated exchange-arena runs (adopted donations taken by
  // detachFromSpace, or a closing donation scope's segments) go back to
  // the process-wide pool; Arena::freeRun is internally locked, so this
  // is safe against other shards allocating donation segments.
  Arena &EA = H.Exchange->arena();
  for (unsigned Sp = 0; Sp != NumSpaces; ++Sp)
    for (const SegmentRun &R : FromExchangeRuns[Sp]) {
      if (H.Cfg.PoisonFromSpace) {
        // rootcheck:allow(segment-base) — collector owns from-space.
        uintptr_t *Base = EA.segmentBase(R.FirstSegment);
        const size_t RunWords =
            static_cast<size_t>(R.SegmentCount) * SegmentWords;
        for (size_t I = 0; I != RunWords; ++I)
          Base[I] = FromSpacePoisonPattern;
      }
      EA.freeRun(R.FirstSegment, R.SegmentCount);
      S.SegmentsFreed += R.SegmentCount;
    }
}

//===----------------------------------------------------------------------===//
// Copying.
//===----------------------------------------------------------------------===//

void Collector::targetFor(unsigned Gen, unsigned Age, unsigned &NewGen,
                          unsigned &NewAge) const {
  const unsigned NextAge = Age + 1;
  if (NextAge >= H.Cfg.TenureCopies) {
    // Aged out: promoted into the collection's target generation,
    // "objects in generations less than or equal to g that survive a
    // collection of generation g are placed in generation g+1" (capped
    // at the oldest generation). With TenureCopies == 1 every survivor
    // takes this branch, reproducing the paper exactly.
    NewGen = T;
    NewAge = 0;
    return;
  }
  // Not yet tenured: another round in its own generation, one age up.
  NewGen = Gen;
  NewAge = NextAge;
}

Value Collector::forward(Value V) {
  // During a parallel scavenge's worker fixpoint, forwarding must claim
  // the object with a CAS and copy into the calling worker's lane; the
  // serial path below would race. Redirecting here (rather than at the
  // call sites) lets every sweep/scan helper run on workers unchanged.
  if (Par)
    return Par->forwardShared(V);
  if (!V.isHeapPointer())
    return V;
  const SegmentInfo &Info = H.segInfo(V.heapAddress());
  if (!Info.isFromSpace())
    return V;

  // A scope close targets the enclosing extent, not the generation
  // ladder; graduation is not a promotion.
  unsigned NewGen = 0, NewAge = 0;
  uint64_t Promoted = 0;
  if (!ClosingScope) {
    targetFor(Info.Generation, Info.Age, NewGen, NewAge);
    Promoted = NewGen > Info.Generation ? 1 : 0;
  }

  if (V.isPair()) {
    PairCell *Cell = V.pairCell();
    if (Value::fromBits(Cell->Car).isForwardMarker())
      return Value::fromBits(Cell->Cdr);
    // Copy, preserving the pair's space (ordinary vs. weak).
    uintptr_t *NewCell =
        ClosingScope ? scopeAllocate(Info.Space, 2)
                     : H.allocateInGeneration(Info.Space, NewGen, NewAge, 2);
    NewCell[0] = Cell->Car;
    NewCell[1] = Cell->Cdr;
    Value NewV = Value::pair(reinterpret_cast<PairCell *>(NewCell));
    Cell->Car = Value::forwardMarker().bits();
    Cell->Cdr = NewV.bits();
    ++S.ObjectsCopied;
    S.BytesCopied += 2 * sizeof(uintptr_t);
    S.ObjectsPromoted += Promoted;
    if (H.ForwardWitness)
      H.ForwardWitness(H.ForwardWitnessCtx, V.bits(), NewV.bits());
    return NewV;
  }

  uintptr_t *Header = V.objectHeader();
  if (headerKind(*Header) == ObjectKind::Forward)
    return Value::fromBits(Header[1]);
  const size_t Words = objectSizeInWords(*Header);
  const size_t AllocWords = objectAllocWords(*Header);
  uintptr_t *NewObj =
      ClosingScope
          ? scopeAllocate(Info.Space, AllocWords)
          : H.allocateInGeneration(Info.Space, NewGen, NewAge, AllocWords);
  std::memcpy(NewObj, Header, Words * sizeof(uintptr_t));
  if (AllocWords > Words)
    NewObj[Words] = 0; // Deterministic padding for the verifier.
  Value NewV = Value::object(NewObj);
  Header[0] = makeHeader(ObjectKind::Forward, 0);
  Header[1] = NewV.bits();
  ++S.ObjectsCopied;
  S.BytesCopied += AllocWords * sizeof(uintptr_t);
  S.ObjectsPromoted += Promoted;
  if (H.ForwardWitness)
    H.ForwardWitness(H.ForwardWitnessCtx, V.bits(), NewV.bits());
  return NewV;
}

void Collector::sweepAllocProfiler() {
  AllocProfiler &P = H.Profiler;
  std::vector<AllocProfiler::SampledObject> &Table = P.trackedObjects();
  size_t Keep = 0;
  for (AllocProfiler::SampledObject &O : Table) {
    const Value V = Value::fromBits(O.Bits);
    const SegmentInfo &Info = H.segInfo(V.heapAddress());
    if (!Info.isFromSpace()) {
      // Lives in a generation older than those collected: untouched.
      Table[Keep++] = O;
      continue;
    }
    if (isForwarded(V)) {
      O.Bits = forwardedAddress(V).bits();
      P.creditSurvival(O);
      Table[Keep++] = O;
    } else {
      P.creditDeath(O);
    }
  }
  Table.resize(Keep);
}

bool Collector::isForwarded(Value V) const {
  if (!V.isHeapPointer())
    return true;
  const SegmentInfo &Info = H.segInfo(V.heapAddress());
  if (!Info.isFromSpace())
    return true;
  if (V.isPair())
    return Value::fromBits(V.pairCell()->Car).isForwardMarker();
  return headerKind(*V.objectHeader()) == ObjectKind::Forward;
}

Value Collector::forwardedAddress(Value V) const {
  if (!V.isHeapPointer())
    return V;
  const SegmentInfo &Info = H.segInfo(V.heapAddress());
  if (!Info.isFromSpace())
    return V;
  if (V.isPair()) {
    GENGC_ASSERT(Value::fromBits(V.pairCell()->Car).isForwardMarker(),
                 "get-fwd-addr on unforwarded pair");
    return Value::fromBits(V.pairCell()->Cdr);
  }
  GENGC_ASSERT(headerKind(*V.objectHeader()) == ObjectKind::Forward,
               "get-fwd-addr on unforwarded object");
  return Value::fromBits(V.objectHeader()[1]);
}

//===----------------------------------------------------------------------===//
// Roots and remembered sets.
//===----------------------------------------------------------------------===//

void Collector::forwardRoots() {
  for (Value *Slot : H.RootSlots) {
    forwardSlot(Slot);
    ++S.RootsScanned;
  }
  for (RootVector *Vec : H.RootVectors)
    for (Value &V : Vec->Slots) {
      forwardSlot(&V);
      ++S.RootsScanned;
    }
  // External root scanners (Heap::addExternalRootScanner) let subsystems
  // that store Values in their own structures — e.g. the shard runtime's
  // session tables — participate in every collection without registering
  // each slot individually.
  for (auto &Entry : H.ExternalRootScanners)
    Entry.second([this](Value *Slot) {
      forwardSlot(Slot);
      ++S.RootsScanned;
    });
  if (!H.Cfg.WeakSymbolTable) {
    // Strong interning: every table entry is a root.
    for (auto &Entry : H.SymbolTable) {
      Value Sym = forward(Value::fromBits(Entry.second));
      Entry.second = Sym.bits();
      ++S.RootsScanned;
    }
  }
}

void Collector::processRememberedSets(unsigned G) {
  for (unsigned I = G + 1; I < H.Cfg.Generations; ++I) {
    std::vector<uintptr_t> Snapshot = H.Remembered[I].takeSnapshot();
    H.Remembered[I].clear();
    for (uintptr_t Bits : Snapshot) {
      Value Container = Value::fromBits(Bits);
      forwardRememberedObject(Container);
      ++S.RememberedObjectsScanned;
      if (pointsBelowGeneration(Container, I))
        H.Remembered[I].insert(Bits);
    }
  }
}

void Collector::forwardRememberedObject(Value Container) {
  if (Container.isPair()) {
    PairCell *Cell = Container.pairCell();
    // A weak pair's car is weak and handled by the weak-pair pass; only
    // its cdr is a strong pointer.
    if (H.segInfo(Container.heapAddress()).Space != SpaceKind::WeakPair)
      forwardWord(&Cell->Car);
    forwardWord(&Cell->Cdr);
    return;
  }
  uintptr_t *Header = Container.objectHeader();
  const size_t Fields = objectPointerFieldCount(*Header);
  for (size_t I = 0; I != Fields; ++I)
    forwardWord(Header + 1 + I);
}

bool Collector::pointsBelowGeneration(Value Container,
                                      unsigned Generation) const {
  auto Below = [&](uintptr_t Bits) {
    Value V = Value::fromBits(Bits);
    // SharedGeneration (0xFF) never compares below: shared values need
    // no remembered entries.
    return V.isHeapPointer() &&
           H.segInfo(V.heapAddress()).Generation < Generation;
  };
  if (Container.isPair()) {
    PairCell *Cell = Container.pairCell();
    bool Weak =
        H.segInfo(Container.heapAddress()).Space == SpaceKind::WeakPair;
    return (!Weak && Below(Cell->Car)) || Below(Cell->Cdr);
  }
  uintptr_t *Header = Container.objectHeader();
  const size_t Fields = objectPointerFieldCount(*Header);
  for (size_t I = 0; I != Fields; ++I)
    if (Below(Header[1 + I]))
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Sweeping.
//===----------------------------------------------------------------------===//

void Collector::kleeneSweep() {
  if (ClosingScope) {
    // Scope-close mode: the to-space is the four target contexts of the
    // enclosing extent, swept from the pre-close frontiers.
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (SpaceKind Space :
           {SpaceKind::Pair, SpaceKind::Typed, SpaceKind::WeakPair}) {
        const unsigned Sp = static_cast<unsigned>(Space);
        Progress |=
            sweepRange(scopeTargetArena(), scopeTargetContext(Sp),
                       ScopeCursors[Sp], Space, /*ContainerGen=*/0);
      }
    }
    return;
  }
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (unsigned Gen = 0; Gen <= T; ++Gen)
      for (unsigned Age = 0; Age != H.Cfg.TenureCopies; ++Age) {
        Progress |= sweepContext(SpaceKind::Pair, Gen, Age);
        Progress |= sweepContext(SpaceKind::Typed, Gen, Age);
        Progress |= sweepContext(SpaceKind::WeakPair, Gen, Age);
        // The data space is pointerless; nothing to sweep.
      }
  }
}

bool Collector::sweepContext(SpaceKind Space, unsigned Gen, unsigned Age) {
  const unsigned Sp = static_cast<unsigned>(Space);
  return sweepRange(H.Segments, H.Contexts[Sp][Gen][Age],
                    Cursors[Sp][Gen][Age], Space, Gen);
}

bool Collector::sweepRange(Arena &A, SpaceContext &Ctx, SweepCursor &Cur,
                           SpaceKind Space, unsigned ContainerGen) {
  bool Progress = false;

  while (true) {
    const std::vector<SegmentRun> &Runs = Ctx.runs();
    if (Cur.RunIndex >= Runs.size())
      break;
    const size_t Used = Ctx.usedWordsOf(A, Cur.RunIndex);
    if (Cur.OffsetWords >= Used) {
      if (Cur.RunIndex + 1 < Runs.size()) {
        ++Cur.RunIndex;
        Cur.OffsetWords = 0;
        continue;
      }
      break; // Caught up with the allocation frontier.
    }
    // rootcheck:allow(segment-base) — the Cheney sweep is the allocation
    // walk itself.
    uintptr_t *P = A.segmentBase(Runs[Cur.RunIndex].FirstSegment) +
                   Cur.OffsetWords;
    if (Space == SpaceKind::Pair || Space == SpaceKind::WeakPair) {
      sweepPairAt(P, Space == SpaceKind::WeakPair, ContainerGen);
      Cur.OffsetWords += 2;
    } else {
      sweepTypedAt(P, ContainerGen);
      Cur.OffsetWords += objectAllocWords(*P);
    }
    Progress = true;
  }
  return Progress;
}

void Collector::maybeReRemember(uintptr_t ContainerBits,
                                unsigned ContainerGen,
                                uintptr_t FieldBits) {
  // Only tenure policies > 1 can leave a survivor in a generation older
  // than something it points to; the paper's simple strategy never
  // does, so the check is skipped entirely then.
  if (ContainerGen == 0)
    return;
  Value Field = Value::fromBits(FieldBits);
  if (!Field.isHeapPointer())
    return;
  if (H.segInfo(Field.heapAddress()).Generation < ContainerGen) {
    // PtrHashSet is not thread-safe; workers buffer the insert and the
    // coordinator replays the buffers in worker order after the join.
    if (Par)
      Par->bufferReRemember(ContainerGen, ContainerBits);
    else
      H.Remembered[ContainerGen].insert(ContainerBits);
  }
}

void Collector::sweepPairAt(uintptr_t *Cell, bool Weak,
                            unsigned ContainerGen) {
  // "When pairs found in the weak-pair space are traced during the
  // normal garbage collection, they are treated like normal pairs
  // except that the car field is not touched."
  if (!Weak)
    forwardWord(&Cell[0]);
  forwardWord(&Cell[1]);
  if (H.Cfg.TenureCopies > 1) {
    Value Pair = Value::pair(reinterpret_cast<PairCell *>(Cell));
    if (!Weak)
      maybeReRemember(Pair.bits(), ContainerGen, Cell[0]);
    maybeReRemember(Pair.bits(), ContainerGen, Cell[1]);
  }
}

void Collector::sweepTypedAt(uintptr_t *Header, unsigned ContainerGen) {
  GENGC_ASSERT(headerKind(*Header) != ObjectKind::Forward,
               "forwarding marker found in to-space");
  const size_t Fields = objectPointerFieldCount(*Header);
  for (size_t I = 0; I != Fields; ++I)
    forwardWord(Header + 1 + I);
  if (H.Cfg.TenureCopies > 1) {
    Value Obj = Value::object(Header);
    for (size_t I = 0; I != Fields; ++I)
      maybeReRemember(Obj.bits(), ContainerGen, Header[1 + I]);
  }
}

//===----------------------------------------------------------------------===//
// Guardians (the Section 4 algorithm).
//===----------------------------------------------------------------------===//

unsigned Collector::entryListIndex(Value Obj, Value Tconc,
                                   Value Agent) const {
  unsigned Index = H.oldestGeneration();
  // A shared participant's SharedGeneration (0xFF) loses the min against
  // the oldest real generation, which is the right list for an entry
  // that can only be reaped when everything else ages out.
  for (Value V : {Obj, Tconc, Agent})
    if (V.isHeapPointer())
      Index = std::min(Index, static_cast<unsigned>(
                                  H.segInfo(V.heapAddress()).Generation));
  return Index;
}

void Collector::processGuardians(unsigned G) {
  using Entry = Heap::ProtectedEntry;
  std::vector<Entry> PendHold, PendFinal;

  // First block: separate accessible from inaccessible registered
  // objects. forwarded?(obj) covers both "copied this cycle" and
  // "resides in an older generation". Section 5 agents are retained for
  // the lifetime of the registration, so every visited entry's agent is
  // forwarded here (for plain registrations the agent IS the object and
  // this is a no-op for inaccessible ones, preserving the Section 4
  // algorithm: forward() only marks it live if it was already live).
  bool ForwardedAnAgent = false;
  auto Classify = [&](const Entry &In) {
    Entry E = In;
    ++S.ProtectedEntriesVisited;
    if (isForwarded(Value::fromBits(E.ObjectBits))) {
      if (E.AgentBits != E.ObjectBits) {
        E.AgentBits = forward(Value::fromBits(E.AgentBits)).bits();
        ForwardedAnAgent = true;
      } else {
        E.AgentBits = forwardedAddress(Value::fromBits(E.ObjectBits)).bits();
      }
      PendHold.push_back(E);
    } else {
      PendFinal.push_back(E);
    }
  };
  if (ClosingScope) {
    // Scope close: only the closing scope's own registrations are in
    // play; forwarded?(obj) now means "graduated or lives outside the
    // scope", so the Section 4 blocks below run unchanged over the
    // dying extent.
    for (const Entry &E : ClosingScope->Protected)
      Classify(E);
    ClosingScope->Protected.clear();
  } else {
    for (unsigned I = 0; I <= G; ++I) {
      for (const Entry &E : H.Protected[I])
        Classify(E);
      H.Protected[I].clear();
    }
    // Entries parked on open scopes' lists: their scope participants are
    // uncollected, but a participant in a collected generation can still
    // move or die, so they are triaged every collection too.
    for (auto &SG : H.ScopeStack) {
      for (const Entry &E : SG->Protected)
        Classify(E);
      SG->Protected.clear();
    }
  }
  if (ForwardedAnAgent)
    kleeneSweep();

  // Second block: repeatedly salvage objects whose guardian (tconc) is
  // accessible. Salvaging can make more tconcs accessible (an object may
  // point to another guardian), hence the fixpoint loop; a tconc that
  // never becomes accessible means the guardian was dropped and the
  // entry is discarded, letting its objects be reclaimed.
  bool FaultDroppedOne = false;
  while (true) {
    ++S.GuardianLoopIterations;
    std::vector<Entry> FinalList;
    size_t Keep = 0;
    for (const Entry &E : PendFinal) {
      if (isForwarded(Value::fromBits(E.TconcBits)))
        FinalList.push_back(E);
      else
        PendFinal[Keep++] = E;
    }
    PendFinal.resize(Keep);
    if (FinalList.empty())
      break;
    if (H.Telemetry.TraceEnabled && !ClosingScope) {
      GcEvent Ev;
      Ev.Type = GcEventType::GuardianResurrection;
      Ev.TimeNanos = H.Telemetry.now();
      Ev.A = FinalList.size();
      // The (generation, target) coordinate pair the census reports
      // under: resurrected entries are re-parked in protected[target].
      Ev.B = T;
      Ev.Collection = static_cast<uint32_t>(S.CollectionIndex);
      Ev.Generation = static_cast<uint8_t>(S.CollectedGeneration);
      Ev.Detail = static_cast<uint16_t>(S.GuardianLoopIterations);
      H.Telemetry.emit(Ev);
    }
    for (const Entry &E : FinalList) {
      if (H.Cfg.InjectedFault == GcFaultInjection::DropFirstResurrection &&
          !FaultDroppedOne) {
        // Injected bug: silently lose one resurrection per collection.
        // The agent is neither forwarded nor delivered, so an object the
        // paper's algorithm would save is reclaimed instead.
        FaultDroppedOne = true;
        continue;
      }
      // Deliver the agent (== the object for plain registrations,
      // saving it from destruction; a distinct Section 5 agent lets the
      // object itself be discarded).
      Value Agent = forward(Value::fromBits(E.AgentBits));
      Value Tconc = forwardedAddress(Value::fromBits(E.TconcBits));
      appendToTconc(Tconc, Agent);
      ++S.GuardianObjectsSaved;
    }
    kleeneSweep();
  }
  S.GuardianEntriesDropped += PendFinal.size();

  // Third block: entries whose object survived. If the guardian survived
  // too, the entry moves to the protected list of the youngest
  // generation among its participants (the target generation, under the
  // paper's tenure policy); otherwise the registration dies with the
  // guardian.
  for (const Entry &E : PendHold) {
    Value Tconc = Value::fromBits(E.TconcBits);
    if (isForwarded(Tconc)) {
      // The agent was already forwarded during classification.
      Value NewObj = forwardedAddress(Value::fromBits(E.ObjectBits));
      Value NewTconc = forwardedAddress(Tconc);
      Value NewAgent = Value::fromBits(E.AgentBits);
      parkProtectedEntry(NewObj, NewTconc, NewAgent);
      ++S.ProtectedEntriesKept;
    } else {
      ++S.GuardianEntriesDropped;
    }
  }
}

void Collector::parkProtectedEntry(Value Obj, Value Tconc, Value Agent) {
  // An entry with a scope participant parks on the deepest such scope's
  // list, so it is revisited no later than that scope's close; entries
  // whose participants are all ordinary heap objects use the paper's
  // youngest-generation rule.
  unsigned Deepest = 0;
  for (Value V : {Obj, Tconc, Agent})
    Deepest = std::max(Deepest, H.scopeDepthOf(V));
  if (Deepest != 0) {
    H.ScopeStack[Deepest - 1]->Protected.push_back(
        {Obj.bits(), Tconc.bits(), Agent.bits()});
    return;
  }
  unsigned Index = entryListIndex(Obj, Tconc, Agent);
  H.Protected[Index].push_back({Obj.bits(), Tconc.bits(), Agent.bits()});
}

void Collector::appendToTconc(Value Tconc, Value Obj) {
  // Figure 3, with the fresh last pair allocated directly in the target
  // generation (the enclosing extent during a scope close). The stores
  // go through the barriered setters: when the tconc lives in an older
  // generation — or a shallower scope — linking in target cells creates
  // edges that must be remembered or escape-recorded.
  uintptr_t *NewCell =
      ClosingScope ? scopeAllocate(SpaceKind::Pair, 2)
                   : H.allocateInGeneration(SpaceKind::Pair, T, /*Age=*/0, 2);
  NewCell[0] = Value::falseV().bits();
  NewCell[1] = Value::falseV().bits();
  Value NewLast = Value::pair(reinterpret_cast<PairCell *>(NewCell));
  tconcAppendWithCell(H, Tconc, Obj, NewLast);
}

//===----------------------------------------------------------------------===//
// register-for-finalization lists.
//===----------------------------------------------------------------------===//

void Collector::processFinalizeLists(unsigned G,
                                     std::vector<uint32_t> &RunQueue) {
  std::vector<Heap::FinalizeEntry> Kept;
  for (unsigned I = 0; I <= G; ++I) {
    for (const Heap::FinalizeEntry &E : H.FinalizeLists[I]) {
      Value Obj = Value::fromBits(E.ObjectBits);
      if (isForwarded(Obj))
        Kept.push_back({forwardedAddress(Obj).bits(), E.ThunkId});
      else
        RunQueue.push_back(E.ThunkId); // Object is NOT preserved.
    }
    H.FinalizeLists[I].clear();
  }
  for (const Heap::FinalizeEntry &E : Kept) {
    Value Obj = Value::fromBits(E.ObjectBits);
    // Clamp SharedGeneration (0xFF): an entry whose object was frozen
    // into the shared space parks on the oldest list, like a non-heap
    // one.
    unsigned Index =
        Obj.isHeapPointer()
            ? std::min(static_cast<unsigned>(
                           H.segInfo(Obj.heapAddress()).Generation),
                       H.oldestGeneration())
            : H.oldestGeneration();
    H.FinalizeLists[Index].push_back(E);
  }
}

//===----------------------------------------------------------------------===//
// Weak pairs.
//===----------------------------------------------------------------------===//

void Collector::weakPairPass(unsigned G) {
  // (a) Weak pairs copied during this collection, in every to-space
  // context.
  const unsigned Sp = static_cast<unsigned>(SpaceKind::WeakPair);
  for (unsigned Gen = 0; Gen <= T; ++Gen) {
    for (unsigned Age = 0; Age != H.Cfg.TenureCopies; ++Age) {
      SpaceContext &Ctx = H.Contexts[Sp][Gen][Age];
      SweepCursor Cur = WeakScanStarts[Gen][Age];
      while (true) {
        const std::vector<SegmentRun> &Runs = Ctx.runs();
        if (Cur.RunIndex >= Runs.size())
          break;
        const size_t Used = Ctx.usedWordsOf(H.Segments, Cur.RunIndex);
        if (Cur.OffsetWords >= Used) {
          if (Cur.RunIndex + 1 < Runs.size()) {
            ++Cur.RunIndex;
            Cur.OffsetWords = 0;
            continue;
          }
          break;
        }
        // rootcheck:allow(segment-base) — weak pass replays the sweep walk.
        uintptr_t *Cell =
            H.Segments.segmentBase(Runs[Cur.RunIndex].FirstSegment) +
            Cur.OffsetWords;
        fixWeakCar(Value::pair(reinterpret_cast<PairCell *>(Cell)));
        Cur.OffsetWords += 2;
      }
    }
  }

  // (b) Older weak pairs whose car was mutated to point at a younger
  // generation. Only these can reference the from-space, so the pass
  // stays proportional to the collected work.
  for (unsigned I = G + 1; I < H.Cfg.Generations; ++I) {
    std::vector<uintptr_t> Snapshot = H.WeakRemembered[I].takeSnapshot();
    H.WeakRemembered[I].clear();
    for (uintptr_t Bits : Snapshot) {
      Value P = Value::fromBits(Bits);
      fixWeakCar(P);
      Value Car = pairCar(P);
      if (Car.isHeapPointer() &&
          H.segInfo(Car.heapAddress()).Generation < I)
        H.WeakRemembered[I].insert(Bits);
    }
  }

  // (c) Weak pairs living in open request scopes: the scopes are not
  // collected, but their cars may point into the collected generations.
  if (!H.ScopeStack.empty())
    scopeWeakContextPass();
}

void Collector::scopeWeakContextPass() {
  const unsigned Sp = static_cast<unsigned>(SpaceKind::WeakPair);
  for (auto &SG : H.ScopeStack) {
    Arena &A = *SG->ScopeArena;
    SpaceContext &Ctx = SG->Contexts[Sp];
    Ctx.sealCurrentRun(A);
    const std::vector<SegmentRun> &Runs = Ctx.runs();
    for (size_t R = 0; R != Runs.size(); ++R) {
      // rootcheck:allow(segment-base) — replays the scope's bump walk.
      uintptr_t *Base = A.segmentBase(Runs[R].FirstSegment);
      const size_t Used = Ctx.usedWordsOf(A, R);
      for (size_t Off = 0; Off != Used; Off += 2)
        fixWeakCar(Value::pair(reinterpret_cast<PairCell *>(Base + Off)));
    }
  }
}

void Collector::scanOpenScopes() {
  // Every object in every open scope is an uncollected container whose
  // strong fields may point into the collected generations: one full
  // scan forwards them. Nothing is allocated into scope contexts during
  // a collection (guardian tconc cells go to the target generation), and
  // collector-side stores only write already-forwarded values, so a
  // single pass per scope suffices — no fixpoint.
  for (auto &SG : H.ScopeStack) {
    for (SpaceKind Space :
         {SpaceKind::Pair, SpaceKind::Typed, SpaceKind::WeakPair}) {
      const unsigned Sp = static_cast<unsigned>(Space);
      SweepCursor Cur{0, 0};
      sweepRange(*SG->ScopeArena, SG->Contexts[Sp], Cur, Space,
                 /*ContainerGen=*/0);
    }
  }
}

void Collector::fixupScopeEscapes() {
  for (auto &SG : H.ScopeStack) {
    for (PtrHashSet *Set : {&SG->Escapes, &SG->WeakEscapes}) {
      std::vector<uintptr_t> Snapshot = Set->takeSnapshot();
      Set->clear();
      for (uintptr_t Bits : Snapshot) {
        Value C = Value::fromBits(Bits);
        const SegmentInfo &Info = H.segInfo(C.heapAddress());
        if (!Info.isFromSpace()) {
          Set->insert(Bits);
        } else if (isForwarded(C)) {
          Set->insert(forwardedAddress(C).bits());
        }
        // Dead containers drop out: whatever escape they recorded died
        // with them.
      }
    }
  }
}

void Collector::fixWeakCar(Value WeakPair) {
  ++S.WeakPairsExamined;
  PairCell *Cell = WeakPair.pairCell();
  Value Car = Value::fromBits(Cell->Car);
  if (!Car.isHeapPointer())
    return;
  const SegmentInfo &Info = H.segInfo(Car.heapAddress());
  if (!Info.isFromSpace())
    return;
  // "If the object pointed to by the car field has been forwarded, the
  // new address is placed in the car field. Otherwise, #f is placed in
  // the car field." Guardian-salvaged objects were forwarded before this
  // pass runs, so they are updated, not broken.
  if (isForwarded(Car) &&
      H.Cfg.InjectedFault != GcFaultInjection::BreakLiveWeakCar) {
    Cell->Car = forwardedAddress(Car).bits();
    Value NewCar = Value::fromBits(Cell->Car);
    // Track a young car (possible under tenure policies, or after this
    // pair was copied while its car stayed behind) so later collections
    // can find it.
    unsigned PairGen = H.segInfo(WeakPair.heapAddress()).Generation;
    if (NewCar.isHeapPointer() &&
        H.segInfo(NewCar.heapAddress()).Generation < PairGen)
      H.WeakRemembered[PairGen].insert(WeakPair.bits());
  } else {
    Cell->Car = Value::falseV().bits();
    ++S.WeakPointersBroken;
  }
}

//===----------------------------------------------------------------------===//
// Symbol table.
//===----------------------------------------------------------------------===//

void Collector::updateSymbolTable() {
  if (!H.Cfg.WeakSymbolTable)
    return; // Handled as strong roots in forwardRoots().
  // Friedman-Wise scatter-table collection: drop entries whose symbol
  // died; update entries whose symbol moved.
  for (auto It = H.SymbolTable.begin(); It != H.SymbolTable.end();) {
    Value Sym = Value::fromBits(It->second);
    const SegmentInfo &Info = H.segInfo(Sym.heapAddress());
    if (!Info.isFromSpace()) {
      ++It;
      continue;
    }
    if (isForwarded(Sym)) {
      It->second = forwardedAddress(Sym).bits();
      ++It;
    } else {
      It = H.SymbolTable.erase(It);
      ++S.SymbolsDropped;
    }
  }
}

//===- gc/ScopedGeneration.h - Request-scoped ephemeral generations -*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A ScopedGeneration is a dynamically created ephemeral generation
/// opened per dynamic extent (DESIGN.md §13): Heap::openScope() pushes
/// one, all mutator allocation then bump-allocates into the scope's own
/// segments (tagged Generation 0 / ScopeDepth d in the segment table),
/// and Heap::closeScope() runs a scope-local evacuation — objects
/// reachable from outside the scope graduate into the enclosing scope
/// (or the ordinary generation 0), everything else dies without ever
/// being traced. Scopes nest LIFO; ScopedExtent is the RAII handle.
///
/// The reachability frontier at close time is:
///   - the real roots (root slots/vectors, external scanners) and the
///     strong symbol table,
///   - the scope's escape set: containers outside the scope into which
///     the write barrier observed a store of a scope pointer (old→scope
///     and outer-scope→inner-scope edges — the scope analogue of a
///     remembered set; WeakEscapes holds weak-pair cars separately so
///     they update-or-break instead of retaining),
///   - the scope's own guardian protected list, over which the paper's
///     Section 4 pend-hold/pend-final fixpoint runs so resurrection
///     order, tconc delivery, and re-guarding at scope exit behave
///     identically to a full collection.
///
/// The struct is collector-internal state published to the Heap,
/// Collector, verifier, and census; it has no mutator-facing API of its
/// own.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_SCOPEDGENERATION_H
#define GENGC_GC_SCOPEDGENERATION_H

#include <vector>

#include "gc/Heap.h"
#include "heap/SpaceContext.h"
#include "support/PtrHashSet.h"

namespace gengc {

struct ScopedGeneration {
  ScopedGeneration(unsigned Depth, Arena *ScopeArena, bool Donation)
      : Depth(Depth), ScopeArena(ScopeArena), Donation(Donation) {}

  /// 1-based nesting depth; equals the ScopeDepth tag of every segment
  /// this scope allocates.
  unsigned Depth;

  /// The arena this scope's segments come from: the heap's private
  /// arena for ordinary scopes, the exchange arena for donation scopes
  /// (Heap::openDonationScope) — whose segments can be handed to
  /// another shard wholesale at close.
  Arena *ScopeArena;

  /// Donation scope: segments are pre-tagged SegmentInfo::FlagDonated
  /// and Heap::tryCloseScopeDonating may close the scope by ownership
  /// transfer instead of evacuation.
  bool Donation;

  /// Bump-allocation contexts, one per space — the scope's private
  /// nursery. Segments are tagged (Space, Generation 0, Age 0, Depth).
  SpaceContext Contexts[NumSpaces];

  /// Containers outside this scope (depth < Depth, any generation) that
  /// may hold a strong pointer into it. Maintained by the write barrier;
  /// scanned as evacuation roots at close. Conservative the same way a
  /// remembered set is: entries whose field was later overwritten are
  /// scanned harmlessly, and entries whose container dies in an
  /// intervening collection are dropped by the collector's escape-set
  /// fixup.
  PtrHashSet Escapes;
  /// Weak pairs outside this scope whose (weak) car may point into it.
  /// At close these cars are updated to the graduated copy or broken to
  /// #f — never treated as roots.
  PtrHashSet WeakEscapes;

  /// Guardian registrations whose deepest participant lives in this
  /// scope. Processed by every ordinary collection (participants in
  /// collected generations may die) and by the Section 4 fixpoint at
  /// this scope's close.
  std::vector<Heap::ProtectedEntry> Protected;
};

/// RAII dynamic-extent handle: opens a scope on construction, closes it
/// on destruction, asserting the LIFO discipline.
class ScopedExtent {
public:
  explicit ScopedExtent(Heap &H) : H(H) {
    H.openScope();
    Depth = H.scopeDepth();
  }
  ~ScopedExtent() {
    GENGC_ASSERT(H.scopeDepth() == Depth,
                 "ScopedExtent destroyed out of LIFO order");
    H.closeScope();
  }

  ScopedExtent(const ScopedExtent &) = delete;
  ScopedExtent &operator=(const ScopedExtent &) = delete;

private:
  Heap &H;
  unsigned Depth;
};

} // namespace gengc

#endif // GENGC_GC_SCOPEDGENERATION_H

//===- gc/GcWorkerPool.h - Persistent GC worker threads -------*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small pool of persistent threads for the parallel stop-the-world
/// scavenge (gc/ParallelScavenge.h). The pool exists so a heap that
/// collects thousands of times per second (GENGC_STRESS) does not pay a
/// thread spawn per collection: threads are created lazily on the first
/// parallel job, parked on a condition variable between jobs, and joined
/// when the owning Heap is destroyed.
///
/// The calling thread — the heap's owner, stopped at a collection
/// safepoint — always participates as worker 0, so a pool backing an
/// N-worker scavenge holds only N-1 threads.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_GCWORKERPOOL_H
#define GENGC_GC_GCWORKERPOOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gengc {

class GcWorkerPool {
public:
  GcWorkerPool() = default;
  ~GcWorkerPool();

  GcWorkerPool(const GcWorkerPool &) = delete;
  GcWorkerPool &operator=(const GcWorkerPool &) = delete;

  /// Runs \p Fn(0), \p Fn(1), ... \p Fn(Workers - 1) concurrently:
  /// Fn(0) on the calling thread, the rest on pool threads (grown on
  /// demand). Returns once every invocation has finished, so everything
  /// the workers wrote happens-before the return. With Workers <= 1 the
  /// call degenerates to Fn(0) inline with no synchronization at all.
  void runJob(unsigned Workers, const std::function<void(unsigned)> &Fn);

  /// Pool threads currently alive (grows monotonically; test/telemetry
  /// introspection).
  unsigned threadCount() const { return static_cast<unsigned>(Threads.size()); }

private:
  void threadMain(unsigned Index, uint64_t StartGeneration);

  std::mutex M;
  std::condition_variable JobCv;  ///< Parked threads wait here.
  std::condition_variable DoneCv; ///< runJob waits for completion here.
  const std::function<void(unsigned)> *Job = nullptr;
  /// Bumped once per job; a parked thread runs when it observes a
  /// generation it has not run yet.
  uint64_t JobGeneration = 0;
  /// Workers participating in the current job, including the caller.
  unsigned JobWorkers = 0;
  /// Pool threads still inside the current job.
  unsigned Remaining = 0;
  bool ShuttingDown = false;
  std::vector<std::thread> Threads;
};

} // namespace gengc

#endif // GENGC_GC_GCWORKERPOOL_H

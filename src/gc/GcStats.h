//===- gc/GcStats.h - Per-collection statistics ---------------*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters gathered during each collection. The generation-friendliness
/// experiments (DESIGN.md C1/C2) are stated in terms of these counters:
/// e.g. ProtectedEntriesVisited must not grow with the number of
/// registered objects parked in generations older than the one collected.
///
/// Each collection is also broken down into phases (GcPhase): the
/// per-phase wall-clock nanos in GcStats::Phases account for the whole
/// pause, so DurationNanos minus Phases.totalNanos() is only the
/// inter-phase bookkeeping (a handful of flag stores). The telemetry
/// layer (gc/telemetry/) records the same phases as trace events.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_GCSTATS_H
#define GENGC_GC_GCSTATS_H

#include <cstdint>

namespace gengc {

/// The distinct phases of one collection, in execution order (the
/// Section 4 phase structure; see Collector.h). Used to index
/// GcStats::Phases and as the payload of PhaseSpan trace events.
enum class GcPhase : uint8_t {
  Setup = 0,      ///< From-space detach, sweep-cursor init, stale
                  ///< remembered-set clearing.
  Roots,          ///< Root-slot and root-vector forwarding.
  RememberedSets, ///< Older generations' remembered-object scan.
  Copy,           ///< The initial Cheney kleene-sweep to a fixpoint.
  Guardians,      ///< Section 4 pend-hold/pend-final fixpoint loop
                  ///< (including its interleaved kleene-sweeps).
  Finalizers,     ///< register-for-finalization list triage.
  WeakPairs,      ///< Weak-pair second pass (update or break cars).
  SymbolTable,    ///< Weak symbol-table entry update/drop.
  Reclaim,        ///< From-space poisoning and segment reclamation.
};
constexpr unsigned NumGcPhases = 9;

/// Display name of a phase (stable identifiers; used by the trace
/// exporter, the post-GC log line, and (gc-stats)).
constexpr const char *gcPhaseName(GcPhase P) {
  switch (P) {
  case GcPhase::Setup:
    return "setup";
  case GcPhase::Roots:
    return "roots";
  case GcPhase::RememberedSets:
    return "remembered-sets";
  case GcPhase::Copy:
    return "copy";
  case GcPhase::Guardians:
    return "guardians";
  case GcPhase::Finalizers:
    return "finalizers";
  case GcPhase::WeakPairs:
    return "weak-pairs";
  case GcPhase::SymbolTable:
    return "symbol-table";
  case GcPhase::Reclaim:
    return "reclaim";
  }
  return "unknown";
}

/// Wall-clock nanoseconds spent in each phase of one collection.
struct GcPhaseBreakdown {
  uint64_t Nanos[NumGcPhases] = {};

  uint64_t &operator[](GcPhase P) {
    return Nanos[static_cast<unsigned>(P)];
  }
  uint64_t operator[](GcPhase P) const {
    return Nanos[static_cast<unsigned>(P)];
  }

  /// Sum over all phases; reconciles with GcStats::DurationNanos.
  uint64_t totalNanos() const {
    uint64_t Total = 0;
    for (unsigned I = 0; I != NumGcPhases; ++I)
      Total += Nanos[I];
    return Total;
  }

  void accumulate(const GcPhaseBreakdown &Other) {
    for (unsigned I = 0; I != NumGcPhases; ++I)
      Nanos[I] += Other.Nanos[I];
  }
};

struct GcStats {
  uint64_t CollectionIndex = 0;
  unsigned CollectedGeneration = 0; ///< The paper's g.
  unsigned TargetGeneration = 0;    ///< The paper's target generation.

  uint64_t ObjectsCopied = 0;
  uint64_t BytesCopied = 0;
  /// Survivors promoted into a generation older than the one they were
  /// copied from (with TenureCopies == 1, every copy is a promotion).
  uint64_t ObjectsPromoted = 0;
  uint64_t RootsScanned = 0;
  uint64_t RememberedObjectsScanned = 0;

  /// Bytes occupied by the collected generations at the start of the
  /// collection (the from-space extent). BytesCopied / BytesInFromSpace
  /// is the collection's survival rate.
  uint64_t BytesInFromSpace = 0;

  /// Guardian bookkeeping (Section 4 algorithm).
  uint64_t ProtectedEntriesVisited = 0; ///< Entries in protected[i], i<=g.
  uint64_t GuardianObjectsSaved = 0;    ///< Moved to an inaccessible group.
  uint64_t ProtectedEntriesKept = 0;    ///< Moved to protected[target].
  uint64_t GuardianEntriesDropped = 0;  ///< Guardian itself was dropped.
  uint64_t GuardianLoopIterations = 0;  ///< Iterations of the pend-final
                                        ///< fixpoint loop.

  uint64_t WeakPairsExamined = 0;
  uint64_t WeakPointersBroken = 0;

  uint64_t FinalizerThunksRun = 0; ///< register-for-finalization baseline.
  uint64_t SymbolsDropped = 0;     ///< Weak symbol-table entries removed.

  uint64_t SegmentsFreed = 0;
  uint64_t DurationNanos = 0;

  /// Mutator write-barrier traffic since the previous collection (the
  /// window that ends with this pause): stores that took the full
  /// writeBarrier path vs stores the compile-time elision pass (or a
  /// heap-internal fast path) proved barrier-free. Elided / (Executed +
  /// Elided) is the store-tax reduction the static analysis bought.
  uint64_t BarriersExecuted = 0;
  uint64_t BarriersElided = 0;

  /// Parallel-scavenge bookkeeping (zero in serial collections except
  /// GcWorkersUsed, which is 1). StealHits <= StealAttempts; a steal is
  /// popping a scan range or work packet another worker published.
  uint64_t GcWorkersUsed = 0;       ///< Workers that ran this scavenge.
  uint64_t StealAttempts = 0;       ///< Shared-queue pops while starving.
  uint64_t StealHits = 0;           ///< Pops that yielded foreign work.
  /// Largest per-worker BytesCopied of this scavenge. The imbalance
  /// ratio is MaxWorkerBytesCopied * GcWorkersUsed / BytesCopied:
  /// 1.0 means a perfectly even split, GcWorkersUsed means one worker
  /// copied everything.
  uint64_t MaxWorkerBytesCopied = 0;

  /// Where the pause went, phase by phase.
  GcPhaseBreakdown Phases;

  /// Per-worker copy imbalance of this scavenge (see
  /// MaxWorkerBytesCopied); 1.0 when nothing was copied.
  double workerImbalanceRatio() const {
    if (BytesCopied == 0 || GcWorkersUsed == 0)
      return 1.0;
    return static_cast<double>(MaxWorkerBytesCopied) *
           static_cast<double>(GcWorkersUsed) /
           static_cast<double>(BytesCopied);
  }
};

/// Running totals across all collections of a heap. Every GcStats
/// counter has a matching total here; accumulate() must be kept in sync
/// when a counter is added (tests/gc/telemetry_test.cpp checks every
/// field).
struct GcTotals {
  uint64_t Collections = 0;
  uint64_t FullCollections = 0;
  uint64_t ObjectsCopied = 0;
  uint64_t BytesCopied = 0;
  uint64_t ObjectsPromoted = 0;
  uint64_t RootsScanned = 0;
  uint64_t RememberedObjectsScanned = 0;
  uint64_t BytesInFromSpace = 0;
  uint64_t ProtectedEntriesVisited = 0;
  uint64_t GuardianObjectsSaved = 0;
  uint64_t ProtectedEntriesKept = 0;
  uint64_t GuardianEntriesDropped = 0;
  uint64_t GuardianLoopIterations = 0;
  uint64_t WeakPairsExamined = 0;
  uint64_t WeakPointersBroken = 0;
  uint64_t FinalizerThunksRun = 0;
  uint64_t SymbolsDropped = 0;
  uint64_t SegmentsFreed = 0;
  uint64_t DurationNanos = 0;
  uint64_t BarriersExecuted = 0;
  uint64_t BarriersElided = 0;
  /// Peak workers seen in any one scavenge (max-merged, not summed:
  /// "this heap has run 4-wide" is the useful fleet fact, not a
  /// meaningless worker-collection product).
  uint64_t GcWorkersUsed = 0;
  uint64_t StealAttempts = 0; ///< Summed across collections.
  uint64_t StealHits = 0;     ///< Summed across collections.
  /// Worst per-worker copy share of any one scavenge (max-merged).
  uint64_t MaxWorkerBytesCopied = 0;
  GcPhaseBreakdown Phases;

  void accumulate(const GcStats &S, unsigned OldestGeneration) {
    ++Collections;
    if (S.CollectedGeneration == OldestGeneration)
      ++FullCollections;
    ObjectsCopied += S.ObjectsCopied;
    BytesCopied += S.BytesCopied;
    ObjectsPromoted += S.ObjectsPromoted;
    RootsScanned += S.RootsScanned;
    RememberedObjectsScanned += S.RememberedObjectsScanned;
    BytesInFromSpace += S.BytesInFromSpace;
    ProtectedEntriesVisited += S.ProtectedEntriesVisited;
    GuardianObjectsSaved += S.GuardianObjectsSaved;
    ProtectedEntriesKept += S.ProtectedEntriesKept;
    GuardianEntriesDropped += S.GuardianEntriesDropped;
    GuardianLoopIterations += S.GuardianLoopIterations;
    WeakPairsExamined += S.WeakPairsExamined;
    WeakPointersBroken += S.WeakPointersBroken;
    FinalizerThunksRun += S.FinalizerThunksRun;
    SymbolsDropped += S.SymbolsDropped;
    SegmentsFreed += S.SegmentsFreed;
    DurationNanos += S.DurationNanos;
    BarriersExecuted += S.BarriersExecuted;
    BarriersElided += S.BarriersElided;
    if (S.GcWorkersUsed > GcWorkersUsed)
      GcWorkersUsed = S.GcWorkersUsed;
    StealAttempts += S.StealAttempts;
    StealHits += S.StealHits;
    if (S.MaxWorkerBytesCopied > MaxWorkerBytesCopied)
      MaxWorkerBytesCopied = S.MaxWorkerBytesCopied;
    Phases.accumulate(S.Phases);
  }

  /// Folds another heap's totals into this one (cross-shard
  /// aggregation; see telemetry/Aggregate.h). Like accumulate(),
  /// must cover every field.
  void merge(const GcTotals &O) {
    Collections += O.Collections;
    FullCollections += O.FullCollections;
    ObjectsCopied += O.ObjectsCopied;
    BytesCopied += O.BytesCopied;
    ObjectsPromoted += O.ObjectsPromoted;
    RootsScanned += O.RootsScanned;
    RememberedObjectsScanned += O.RememberedObjectsScanned;
    BytesInFromSpace += O.BytesInFromSpace;
    ProtectedEntriesVisited += O.ProtectedEntriesVisited;
    GuardianObjectsSaved += O.GuardianObjectsSaved;
    ProtectedEntriesKept += O.ProtectedEntriesKept;
    GuardianEntriesDropped += O.GuardianEntriesDropped;
    GuardianLoopIterations += O.GuardianLoopIterations;
    WeakPairsExamined += O.WeakPairsExamined;
    WeakPointersBroken += O.WeakPointersBroken;
    FinalizerThunksRun += O.FinalizerThunksRun;
    SymbolsDropped += O.SymbolsDropped;
    SegmentsFreed += O.SegmentsFreed;
    DurationNanos += O.DurationNanos;
    BarriersExecuted += O.BarriersExecuted;
    BarriersElided += O.BarriersElided;
    if (O.GcWorkersUsed > GcWorkersUsed)
      GcWorkersUsed = O.GcWorkersUsed;
    StealAttempts += O.StealAttempts;
    StealHits += O.StealHits;
    if (O.MaxWorkerBytesCopied > MaxWorkerBytesCopied)
      MaxWorkerBytesCopied = O.MaxWorkerBytesCopied;
    Phases.accumulate(O.Phases);
  }
};

/// Statistics of one scope-close evacuation (Heap::closeScope). A scope
/// close is deliberately NOT a collection — it does not bump
/// GcTotals::Collections, CollectionIndex, or the per-generation
/// survival history — so its counters live in their own record rather
/// than in GcStats. The shared machinery (forwarding, the guardian
/// fixpoint, weak-pair breaking) still fills the same kinds of
/// counters, with "evacuated" in place of "copied".
struct ScopeCloseStats {
  unsigned Depth = 0; ///< The scope that was closed (1 = outermost).

  uint64_t ObjectsEvacuated = 0; ///< Graduated into the enclosing extent.
  uint64_t BytesEvacuated = 0;
  /// Bytes the scope had bump-allocated when it closed (its from-space
  /// extent). BytesInScope - BytesEvacuated died without being traced.
  uint64_t BytesInScope = 0;
  uint64_t SegmentsFreed = 0;

  /// Guardian bookkeeping over the scope's own protected list (the
  /// Section 4 fixpoint, run at scope exit).
  uint64_t ProtectedEntriesVisited = 0;
  uint64_t GuardianObjectsSaved = 0;
  uint64_t ProtectedEntriesKept = 0;
  uint64_t GuardianEntriesDropped = 0;
  uint64_t GuardianLoopIterations = 0;

  uint64_t WeakPairsExamined = 0;
  uint64_t WeakPointersBroken = 0;
  uint64_t FinalizerThunksRun = 0;
  uint64_t SymbolsDropped = 0;

  uint64_t DurationNanos = 0;
};

/// Running totals across every scope open/close of a heap. Mirrors the
/// GcTotals discipline: merge() must cover every field (cross-shard
/// aggregation in tools/loadgen).
struct ScopeTotals {
  uint64_t ScopesOpened = 0;
  uint64_t ScopesClosed = 0;
  uint64_t MaxDepth = 0; ///< Deepest nesting seen (max-merged).
  uint64_t ObjectsEvacuated = 0;
  uint64_t BytesEvacuated = 0;
  uint64_t BytesInScopes = 0;
  /// BytesInScopes - BytesEvacuated: request-local garbage reclaimed at
  /// scope exits without ever being traced by a collection.
  uint64_t BytesReclaimed = 0;
  uint64_t SegmentsFreed = 0;
  uint64_t GuardianObjectsSaved = 0;
  uint64_t WeakPointersBroken = 0;
  uint64_t SymbolsDropped = 0;
  uint64_t CloseNanos = 0;

  void accumulate(const ScopeCloseStats &S) {
    ++ScopesClosed;
    if (S.Depth > MaxDepth)
      MaxDepth = S.Depth;
    ObjectsEvacuated += S.ObjectsEvacuated;
    BytesEvacuated += S.BytesEvacuated;
    BytesInScopes += S.BytesInScope;
    BytesReclaimed += S.BytesInScope - S.BytesEvacuated;
    SegmentsFreed += S.SegmentsFreed;
    GuardianObjectsSaved += S.GuardianObjectsSaved;
    WeakPointersBroken += S.WeakPointersBroken;
    SymbolsDropped += S.SymbolsDropped;
    CloseNanos += S.DurationNanos;
  }

  void merge(const ScopeTotals &O) {
    ScopesOpened += O.ScopesOpened;
    ScopesClosed += O.ScopesClosed;
    if (O.MaxDepth > MaxDepth)
      MaxDepth = O.MaxDepth;
    ObjectsEvacuated += O.ObjectsEvacuated;
    BytesEvacuated += O.BytesEvacuated;
    BytesInScopes += O.BytesInScopes;
    BytesReclaimed += O.BytesReclaimed;
    SegmentsFreed += O.SegmentsFreed;
    GuardianObjectsSaved += O.GuardianObjectsSaved;
    WeakPointersBroken += O.WeakPointersBroken;
    SymbolsDropped += O.SymbolsDropped;
    CloseNanos += O.CloseNanos;
  }
};

} // namespace gengc

#endif // GENGC_GC_GCSTATS_H

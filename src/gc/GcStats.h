//===- gc/GcStats.h - Per-collection statistics ---------------*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters gathered during each collection. The generation-friendliness
/// experiments (DESIGN.md C1/C2) are stated in terms of these counters:
/// e.g. ProtectedEntriesVisited must not grow with the number of
/// registered objects parked in generations older than the one collected.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_GCSTATS_H
#define GENGC_GC_GCSTATS_H

#include <cstdint>

namespace gengc {

struct GcStats {
  uint64_t CollectionIndex = 0;
  unsigned CollectedGeneration = 0; ///< The paper's g.
  unsigned TargetGeneration = 0;    ///< The paper's target generation.

  uint64_t ObjectsCopied = 0;
  uint64_t BytesCopied = 0;
  uint64_t RootsScanned = 0;
  uint64_t RememberedObjectsScanned = 0;

  /// Guardian bookkeeping (Section 4 algorithm).
  uint64_t ProtectedEntriesVisited = 0; ///< Entries in protected[i], i<=g.
  uint64_t GuardianObjectsSaved = 0;    ///< Moved to an inaccessible group.
  uint64_t ProtectedEntriesKept = 0;    ///< Moved to protected[target].
  uint64_t GuardianEntriesDropped = 0;  ///< Guardian itself was dropped.
  uint64_t GuardianLoopIterations = 0;  ///< Iterations of the pend-final
                                        ///< fixpoint loop.

  uint64_t WeakPairsExamined = 0;
  uint64_t WeakPointersBroken = 0;

  uint64_t FinalizerThunksRun = 0; ///< register-for-finalization baseline.
  uint64_t SymbolsDropped = 0;     ///< Weak symbol-table entries removed.

  uint64_t SegmentsFreed = 0;
  uint64_t DurationNanos = 0;
};

/// Running totals across all collections of a heap.
struct GcTotals {
  uint64_t Collections = 0;
  uint64_t FullCollections = 0;
  uint64_t ObjectsCopied = 0;
  uint64_t BytesCopied = 0;
  uint64_t ProtectedEntriesVisited = 0;
  uint64_t GuardianObjectsSaved = 0;
  uint64_t WeakPointersBroken = 0;
  uint64_t DurationNanos = 0;

  void accumulate(const GcStats &S, unsigned OldestGeneration) {
    ++Collections;
    if (S.CollectedGeneration == OldestGeneration)
      ++FullCollections;
    ObjectsCopied += S.ObjectsCopied;
    BytesCopied += S.BytesCopied;
    ProtectedEntriesVisited += S.ProtectedEntriesVisited;
    GuardianObjectsSaved += S.GuardianObjectsSaved;
    WeakPointersBroken += S.WeakPointersBroken;
    DurationNanos += S.DurationNanos;
  }
};

} // namespace gengc

#endif // GENGC_GC_GCSTATS_H

//===- gc/ParallelScavenge.cpp - Multi-worker Cheney scavenge -*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
//
// Memory-ordering notes (the whole file in four invariants):
//
//  * Claim: forwarding installs a BUSY marker in the pair car / object
//    header with an acquire CAS. Exactly one worker wins; the pre-claim
//    word (the real car / header) travels back through the CAS's
//    expected-value slot, so the winner never re-reads a word another
//    worker could be mutating.
//  * Publish: the winner writes the copy, then release-stores the new
//    address into word 1, then release-stores the FINAL marker into
//    word 0. A loser spins with acquire loads on word 0; seeing FINAL
//    therefore happens-after the copy *and* the Arena::allocateRun that
//    produced the destination run, making both the object payload and
//    its SegmentInfo entry safe to read.
//  * Steal: sealed lane runs travel through the queue mutex; every
//    object in a sealed run was fully initialized by the publishing
//    worker before the run was sealed (bump allocation is in program
//    order, objects never span runs).
//  * Join: GcWorkerPool::runJob synchronizes every worker's writes with
//    the coordinator's return, so the post-join adoption/merge reads
//    plain memory.
//
// BUSY markers reuse the Forward encodings with payload/length 1 (the
// real markers use 0). The mutator can produce neither: Forward-kind
// immediates and Forward-kind headers are collector-internal. Both
// comparisons are against exact bits — Value::isForwardMarker and
// headerKind tests are kind-based and would also match BUSY.
//
//===----------------------------------------------------------------------===//

#include "gc/ParallelScavenge.h"

#include <algorithm>
#include <cstring>

#include "gc/GcWorkerPool.h"
#include "gc/Roots.h"

using namespace gengc;

thread_local ParallelScavenge::Worker *ParallelScavenge::CurrentWorker =
    nullptr;

namespace {

/// Final and in-progress forwarding words for pairs (tagged immediates).
const uintptr_t PairForwardBits = Value::forwardMarker().bits();
const uintptr_t PairBusyBits = PairForwardBits | (uintptr_t{1} << 8);

/// Final and in-progress forwarding words for typed objects (headers).
constexpr uintptr_t TypedForwardBits = makeHeader(ObjectKind::Forward, 0);
constexpr uintptr_t TypedBusyBits = makeHeader(ObjectKind::Forward, 1);

} // namespace

ParallelScavenge::ParallelScavenge(Collector &C, unsigned G,
                                   unsigned Workers)
    : C(C), H(C.H), G(G), T(C.T), NumWorkers(Workers) {
  GENGC_ASSERT(Workers >= 2, "parallel scavenge needs >= 2 workers");
  WorkerStates.resize(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    WorkerStates[I].Index = I;
}

void ParallelScavenge::run(uint64_t &PhaseCursor) {
  GcTelemetry &Tel = H.Telemetry;
  // In the parallel scheme the Roots / RememberedSets phases only *build*
  // work packets; the forwarding they name happens inside Copy, where
  // the workers drain the queue. The phases still tile the pause.
  {
    PhaseTimer PT(Tel, C.S, GcPhase::Roots, PhaseCursor);
    buildRootPackets();
  }
  {
    PhaseTimer PT(Tel, C.S, GcPhase::RememberedSets, PhaseCursor);
    buildRememberedPackets();
  }
  {
    PhaseTimer PT(Tel, C.S, GcPhase::Copy, PhaseCursor);
    C.Par = this;
    H.gcWorkerPool().runJob(
        NumWorkers, [this](unsigned I) { workerLoop(WorkerStates[I]); });
    C.Par = nullptr;
    adoptLanesAndMerge();
  }
}

//===----------------------------------------------------------------------===//
// Packet building (coordinator, pre-fork).
//===----------------------------------------------------------------------===//

void ParallelScavenge::buildRootPackets() {
  for (Value *Slot : H.RootSlots)
    Slots.push_back(Slot);
  for (RootVector *Vec : H.RootVectors)
    for (Value &V : Vec->slots())
      Slots.push_back(&V);
  // External scanners guarantee stable slot storage while registered,
  // so collecting the pointers now and forwarding them on a worker is
  // equivalent to the serial visit.
  for (auto &Entry : H.ExternalRootScanners)
    Entry.second([this](Value *Slot) { Slots.push_back(Slot); });
  if (!H.Cfg.WeakSymbolTable)
    for (auto &Entry : H.SymbolTable)
      Words.push_back(&Entry.second);

  for (size_t B = 0, E = Slots.size(); B < E; B += SlotPacketSize) {
    WorkItem Item;
    Item.Kind = WorkKind::ValueSlots;
    Item.Begin = B;
    Item.End = std::min(B + SlotPacketSize, E);
    Queue.push_back(Item);
  }
  for (size_t B = 0, E = Words.size(); B < E; B += SlotPacketSize) {
    WorkItem Item;
    Item.Kind = WorkKind::WordSlots;
    Item.Begin = B;
    Item.End = std::min(B + SlotPacketSize, E);
    Queue.push_back(Item);
  }
}

void ParallelScavenge::buildRememberedPackets() {
  // Same snapshot-and-clear as the serial processRememberedSets; the
  // per-container keep/drop decision is made by whichever worker scans
  // the container and replayed into the sets after the join.
  for (unsigned I = G + 1; I < H.Cfg.Generations; ++I) {
    std::vector<uintptr_t> Snapshot = H.Remembered[I].takeSnapshot();
    H.Remembered[I].clear();
    for (uintptr_t Bits : Snapshot)
      RememberedItems.push_back({Bits, I});
  }
  for (size_t B = 0, E = RememberedItems.size(); B < E;
       B += RememberedPacketSize) {
    WorkItem Item;
    Item.Kind = WorkKind::Remembered;
    Item.Begin = B;
    Item.End = std::min(B + RememberedPacketSize, E);
    Queue.push_back(Item);
  }
}

//===----------------------------------------------------------------------===//
// The worker fixpoint.
//===----------------------------------------------------------------------===//

void ParallelScavenge::workerLoop(Worker &W) {
  CurrentWorker = &W;
  W.StartNanos = H.Telemetry.now();
  for (;;) {
    // Drain our own lanes first: newly copied objects are scanned by
    // their copier with no synchronization at all.
    if (scanOwnLanes(W))
      continue;
    WorkItem Item;
    bool HaveItem = false;
    {
      std::unique_lock<std::mutex> Lock(QueueM);
      for (;;) {
        if (!Queue.empty()) {
          Item = Queue.front();
          Queue.pop_front();
          HaveItem = true;
          ++W.StealAttempts;
          break;
        }
        // Idle-count termination: the last worker to find both its
        // lanes and the queue empty proves the global fixpoint — no
        // in-flight worker can publish more work.
        ++IdleCount;
        if (IdleCount == NumWorkers) {
          Done = true;
          QueueCv.notify_all();
          break;
        }
        QueueCv.wait(Lock, [this] { return Done || !Queue.empty(); });
        if (Done)
          break;
        --IdleCount;
        // Re-check: another woken worker may have drained the queue.
      }
    }
    if (!HaveItem)
      break;
    if (Item.Publisher != ~0u && Item.Publisher != W.Index)
      ++W.StealHits;
    executeItem(Item, W);
  }
  W.EndNanos = H.Telemetry.now();
  CurrentWorker = nullptr;
}

bool ParallelScavenge::scanOwnLanes(Worker &W) {
  bool Progress = false;
  bool Any = true;
  while (Any) {
    Any = false;
    for (unsigned Gen = 0; Gen <= T; ++Gen)
      for (unsigned Age = 0; Age != H.Cfg.TenureCopies; ++Age) {
        Any |= scanOwnLane(W, SpaceKind::Pair, Gen, Age);
        Any |= scanOwnLane(W, SpaceKind::Typed, Gen, Age);
        Any |= scanOwnLane(W, SpaceKind::WeakPair, Gen, Age);
        // The data space is pointerless; nothing to scan.
      }
    Progress |= Any;
  }
  return Progress;
}

bool ParallelScavenge::scanOwnLane(Worker &W, SpaceKind Space, unsigned Gen,
                                   unsigned Age) {
  const unsigned Sp = static_cast<unsigned>(Space);
  SpaceContext &Ctx = W.Lanes[Sp][Gen][Age];
  Collector::SweepCursor &Cur = W.LaneCursors[Sp][Gen][Age];
  bool Progress = false;

  while (true) {
    const std::vector<SegmentRun> &Runs = Ctx.runs();
    if (Cur.RunIndex >= Runs.size())
      break;
    const size_t Used = Ctx.usedWordsOf(H.Segments, Cur.RunIndex);
    if (Cur.OffsetWords >= Used) {
      if (Cur.RunIndex + 1 < Runs.size()) {
        // Allocation has raced ahead of the scan by at least one whole
        // run. Runs strictly between the cursor and the live run are
        // sealed and untouched by us: publish them for stealing — this
        // is what spreads one giant structure across workers — and jump
        // to the live run.
        publishRuns(W, Ctx, Cur.RunIndex + 1, Runs.size() - 1, Space, Gen);
        Cur.RunIndex = Runs.size() - 1;
        Cur.OffsetWords = 0;
        continue;
      }
      break; // Caught up with the allocation frontier.
    }
    // rootcheck:allow(segment-base) — lane scan is the allocation walk.
    uintptr_t *P = H.Segments.segmentBase(Runs[Cur.RunIndex].FirstSegment) +
                   Cur.OffsetWords;
    if (Space == SpaceKind::Pair || Space == SpaceKind::WeakPair) {
      C.sweepPairAt(P, Space == SpaceKind::WeakPair, Gen);
      Cur.OffsetWords += 2;
    } else {
      const size_t Step = objectAllocWords(*P);
      C.sweepTypedAt(P, Gen);
      Cur.OffsetWords += Step;
    }
    Progress = true;
  }
  return Progress;
}

void ParallelScavenge::publishRuns(Worker &W, const SpaceContext &Ctx,
                                   size_t BeginRun, size_t EndRun,
                                   SpaceKind Space, unsigned Gen) {
  if (BeginRun >= EndRun)
    return;
  const std::vector<SegmentRun> &Runs = Ctx.runs();
  std::vector<WorkItem> Items;
  for (size_t I = BeginRun; I != EndRun; ++I) {
    const SegmentRun &R = Runs[I];
    if (R.UsedWords == 0)
      continue;
    // rootcheck:allow(segment-base) — publishing our own sealed run.
    uintptr_t *Base = H.Segments.segmentBase(R.FirstSegment);
    WorkItem Item;
    Item.Kind = WorkKind::ScanRange;
    Item.Publisher = W.Index;
    Item.ScanBegin = Base;
    Item.ScanEnd = Base + R.UsedWords;
    Item.Space = Space;
    Item.Gen = static_cast<uint8_t>(Gen);
    Items.push_back(Item);
  }
  if (Items.empty())
    return;
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    for (const WorkItem &Item : Items)
      Queue.push_back(Item);
  }
  QueueCv.notify_all();
}

void ParallelScavenge::executeItem(const WorkItem &Item, Worker &W) {
  switch (Item.Kind) {
  case WorkKind::ValueSlots:
    for (size_t I = Item.Begin; I != Item.End; ++I) {
      C.forwardSlot(Slots[I]);
      ++W.RootsScanned;
    }
    break;
  case WorkKind::WordSlots:
    for (size_t I = Item.Begin; I != Item.End; ++I) {
      C.forwardWord(Words[I]);
      ++W.RootsScanned;
    }
    break;
  case WorkKind::Remembered:
    for (size_t I = Item.Begin; I != Item.End; ++I) {
      const auto &R = RememberedItems[I];
      Value Container = Value::fromBits(R.first);
      C.forwardRememberedObject(Container);
      ++W.RememberedScanned;
      if (C.pointsBelowGeneration(Container, R.second))
        W.KeptRemembered.push_back(R);
    }
    break;
  case WorkKind::ScanRange:
    scanRange(Item.ScanBegin, Item.ScanEnd, Item.Space, Item.Gen);
    break;
  }
}

void ParallelScavenge::scanRange(uintptr_t *P, uintptr_t *End,
                                 SpaceKind Space, unsigned Gen) {
  while (P < End) {
    if (Space == SpaceKind::Pair || Space == SpaceKind::WeakPair) {
      C.sweepPairAt(P, Space == SpaceKind::WeakPair, Gen);
      P += 2;
    } else {
      const size_t Step = objectAllocWords(*P);
      C.sweepTypedAt(P, Gen);
      P += Step;
    }
  }
}

//===----------------------------------------------------------------------===//
// CAS forwarding.
//===----------------------------------------------------------------------===//

Value ParallelScavenge::forwardShared(Value V) {
  if (!V.isHeapPointer())
    return V;
  // segInfo: adopted donation runs live in the exchange arena and are
  // from-space during a full collection; their infos are stable while
  // the world is stopped, so the unsynchronized read is safe.
  const SegmentInfo &Info = H.segInfo(V.heapAddress());
  if (!Info.isFromSpace())
    return V;

  unsigned NewGen, NewAge;
  C.targetFor(Info.Generation, Info.Age, NewGen, NewAge);
  const uint64_t Promoted = NewGen > Info.Generation ? 1 : 0;
  const unsigned Sp = static_cast<unsigned>(Info.Space);
  Worker &W = *CurrentWorker;

  if (V.isPair()) {
    uintptr_t *Cell = reinterpret_cast<uintptr_t *>(V.pairCell());
    uintptr_t Car = __atomic_load_n(&Cell[0], __ATOMIC_ACQUIRE);
    for (;;) {
      if (Car == PairForwardBits)
        return Value::fromBits(__atomic_load_n(&Cell[1], __ATOMIC_ACQUIRE));
      if (Car == PairBusyBits) { // Another worker is mid-copy: spin.
        Car = __atomic_load_n(&Cell[0], __ATOMIC_ACQUIRE);
        continue;
      }
      if (__atomic_compare_exchange_n(&Cell[0], &Car, PairBusyBits,
                                      /*weak=*/false, __ATOMIC_ACQUIRE,
                                      __ATOMIC_ACQUIRE))
        break; // Claimed; Car holds the pre-claim car.
      // CAS failure reloaded Car; loop classifies it.
    }
    uintptr_t *NewCell = W.Lanes[Sp][NewGen][NewAge].allocate(
        H.Segments, Info.Space, static_cast<uint8_t>(NewGen), 2,
        static_cast<uint8_t>(NewAge));
    NewCell[0] = Car;
    NewCell[1] = Cell[1]; // Post-claim, only we touch the old cell.
    Value NewV = Value::pair(reinterpret_cast<PairCell *>(NewCell));
    __atomic_store_n(&Cell[1], NewV.bits(), __ATOMIC_RELEASE);
    __atomic_store_n(&Cell[0], PairForwardBits, __ATOMIC_RELEASE);
    ++W.ObjectsCopied;
    W.BytesCopied += 2 * sizeof(uintptr_t);
    W.ObjectsPromoted += Promoted;
    if (H.ForwardWitness) {
      std::lock_guard<std::mutex> Lock(WitnessM);
      H.ForwardWitness(H.ForwardWitnessCtx, V.bits(), NewV.bits());
    }
    return NewV;
  }

  uintptr_t *Header = V.objectHeader();
  uintptr_t H0 = __atomic_load_n(&Header[0], __ATOMIC_ACQUIRE);
  for (;;) {
    if (H0 == TypedForwardBits)
      return Value::fromBits(__atomic_load_n(&Header[1], __ATOMIC_ACQUIRE));
    if (H0 == TypedBusyBits) {
      H0 = __atomic_load_n(&Header[0], __ATOMIC_ACQUIRE);
      continue;
    }
    if (__atomic_compare_exchange_n(&Header[0], &H0, TypedBusyBits,
                                    /*weak=*/false, __ATOMIC_ACQUIRE,
                                    __ATOMIC_ACQUIRE))
      break; // Claimed; H0 holds the real header.
  }
  const size_t Words = objectSizeInWords(H0);
  const size_t AllocWords = objectAllocWords(H0);
  uintptr_t *NewObj = W.Lanes[Sp][NewGen][NewAge].allocate(
      H.Segments, Info.Space, static_cast<uint8_t>(NewGen), AllocWords,
      static_cast<uint8_t>(NewAge));
  NewObj[0] = H0;
  std::memcpy(NewObj + 1, Header + 1, (Words - 1) * sizeof(uintptr_t));
  if (AllocWords > Words)
    NewObj[Words] = 0; // Deterministic padding for the verifier.
  Value NewV = Value::object(NewObj);
  __atomic_store_n(&Header[1], NewV.bits(), __ATOMIC_RELEASE);
  __atomic_store_n(&Header[0], TypedForwardBits, __ATOMIC_RELEASE);
  ++W.ObjectsCopied;
  W.BytesCopied += AllocWords * sizeof(uintptr_t);
  W.ObjectsPromoted += Promoted;
  if (H.ForwardWitness) {
    std::lock_guard<std::mutex> Lock(WitnessM);
    H.ForwardWitness(H.ForwardWitnessCtx, V.bits(), NewV.bits());
  }
  return NewV;
}

void ParallelScavenge::bufferReRemember(unsigned ContainerGen,
                                        uintptr_t ContainerBits) {
  CurrentWorker->ReRemember.push_back({ContainerBits, ContainerGen});
}

//===----------------------------------------------------------------------===//
// Post-join adoption and merge (coordinator).
//===----------------------------------------------------------------------===//

void ParallelScavenge::adoptLanesAndMerge() {
  GENGC_ASSERT(Done && Queue.empty(), "workers joined before fixpoint");
  for (unsigned Sp = 0; Sp != NumSpaces; ++Sp)
    for (unsigned Gen = 0; Gen <= T; ++Gen)
      for (unsigned Age = 0; Age != H.Cfg.TenureCopies; ++Age) {
        SpaceContext &Canon = H.Contexts[Sp][Gen][Age];
        for (Worker &W : WorkerStates)
          Canon.adoptRuns(H.Segments, W.Lanes[Sp][Gen][Age]);
        // Every adopted object was scanned during the fixpoint (or is
        // pointerless data), so the serial sweep — rerun by the
        // guardian phase — resumes at the new frontier.
        if (Canon.runs().empty()) {
          C.Cursors[Sp][Gen][Age] = Collector::SweepCursor{0, 0};
        } else {
          const size_t Last = Canon.runs().size() - 1;
          C.Cursors[Sp][Gen][Age] = Collector::SweepCursor{
              Last, Canon.usedWordsOf(H.Segments, Last)};
        }
      }

  uint64_t MaxBytes = 0;
  for (const Worker &W : WorkerStates) {
    C.S.ObjectsCopied += W.ObjectsCopied;
    C.S.BytesCopied += W.BytesCopied;
    C.S.ObjectsPromoted += W.ObjectsPromoted;
    C.S.RootsScanned += W.RootsScanned;
    C.S.RememberedObjectsScanned += W.RememberedScanned;
    C.S.StealAttempts += W.StealAttempts;
    C.S.StealHits += W.StealHits;
    MaxBytes = std::max(MaxBytes, W.BytesCopied);
  }
  C.S.GcWorkersUsed = NumWorkers;
  C.S.MaxWorkerBytesCopied = MaxBytes;

  // Replay deferred remembered-set work in worker order. PtrHashSet
  // membership is order-independent; replay order only affects internal
  // layout, never which containers are remembered.
  for (const Worker &W : WorkerStates) {
    for (const auto &R : W.KeptRemembered)
      H.Remembered[R.second].insert(R.first);
    for (const auto &R : W.ReRemember)
      H.Remembered[R.second].insert(R.first);
  }

  if (H.Telemetry.TraceEnabled) {
    // The ring is single-writer; worker spans are emitted here, by the
    // coordinator, after the join.
    for (const Worker &W : WorkerStates) {
      GcEvent E;
      E.Type = GcEventType::GcWorkerSpan;
      E.TimeNanos = W.StartNanos;
      E.DurNanos = W.EndNanos - W.StartNanos;
      E.A = W.BytesCopied;
      E.B = W.StealHits;
      E.Collection = static_cast<uint32_t>(C.S.CollectionIndex);
      E.Generation = static_cast<uint8_t>(C.S.CollectedGeneration);
      E.Detail = static_cast<uint16_t>(W.Index);
      H.Telemetry.emit(E);
    }
  }
}

//===- gc/Heap.cpp - The mutator-facing heap ------------------*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "gc/Heap.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "gc/Collector.h"
#include "gc/GcWorkerPool.h"
#include "gc/Roots.h"
#include "gc/ScopedGeneration.h"
#include "gc/Tconc.h"
#include "gc/telemetry/TraceExport.h"
#include "heap/SharedImmutableSpace.h"

using namespace gengc;

namespace {

/// GENGC_STRESS environment override: "1"/"on"/"yes" forces stress mode
/// on, "0"/"off"/"no" forces it off, unset/other leaves the configured
/// default. Lets CI run the same test binaries with and without stress.
void applyStressEnvironment(HeapConfig &Cfg) {
  const char *Env = std::getenv("GENGC_STRESS");
  if (!Env)
    return;
  std::string_view V(Env);
  if (V == "1" || V == "on" || V == "yes" || V == "ON") {
    Cfg.StressGC = true;
    Cfg.PoisonFromSpace = true;
  } else if (V == "0" || V == "off" || V == "no" || V == "OFF") {
    Cfg.StressGC = false;
  }
}

/// Resolves HeapConfig::GcThreads to the width collections actually run
/// at. An explicit config value always wins; GcThreads == 0 (auto)
/// consults GENGC_GC_THREADS, then the hardware. Clamped to
/// [1, MaxGcThreads] either way.
unsigned resolveGcThreads(const HeapConfig &Cfg) {
  unsigned N = Cfg.GcThreads;
  if (N == 0) {
    if (const char *Env = std::getenv("GENGC_GC_THREADS"))
      N = static_cast<unsigned>(std::atoi(Env));
    if (N == 0) {
      N = std::thread::hardware_concurrency();
      if (N == 0)
        N = 1;
    }
  }
  return std::min(std::max(N, 1u), HeapConfig::MaxGcThreads);
}

} // namespace

Heap::Heap(HeapConfig Config)
    : Cfg(Config), Segments(Config.ArenaBytes),
      Exchange(Config.Exchange ? Config.Exchange
                               : &SharedImmutableSpace::process()),
      OwnerThread(std::this_thread::get_id()) {
  GENGC_ASSERT(Cfg.Generations >= 1 && Cfg.Generations <= MaxGenerations,
               "generation count out of range");
  GENGC_ASSERT(Cfg.CollectionRadix >= 2, "collection radix must be >= 2");
  GENGC_ASSERT(Cfg.TenureCopies >= 1 && Cfg.TenureCopies <= MaxTenureCopies,
               "tenure copy count out of range");
  GENGC_ASSERT(Cfg.StressInterval >= 1, "stress interval must be >= 1");
  applyStressEnvironment(Cfg);
  GcThreadsResolved = resolveGcThreads(Cfg);
  initTelemetry(Telemetry, Cfg);
  Profiler.init(Cfg);
  if (Telemetry.TraceEnabled) {
    // Segment traffic flows straight from the arena into the event
    // ring; with tracing off the arena's observer slot stays null.
    Segments.setSegmentObserver(
        [](void *Ctx, bool IsAlloc, uint32_t First, uint32_t Count,
           SpaceKind Space, uint8_t Generation) {
          Heap *H = static_cast<Heap *>(Ctx);
          GcEvent E;
          E.Type = IsAlloc ? GcEventType::SegmentAlloc
                           : GcEventType::SegmentFree;
          E.TimeNanos = H->Telemetry.now();
          E.A = First;
          E.B = Count;
          // During a collection the collector has not yet bumped
          // Totals.Collections, so the in-flight index is Collections+1.
          E.Collection = H->InGc
                             ? static_cast<uint32_t>(H->Totals.Collections + 1)
                             : 0;
          E.Generation = Generation;
          E.Detail = static_cast<uint16_t>(Space);
          H->Telemetry.emit(E);
        },
        this);
  }
}

Heap::~Heap() {
  if (Telemetry.TraceEnabled && !Telemetry.TraceDumpPath.empty())
    dumpChromeTraceToFile(Telemetry, Telemetry.TraceDumpPath);
  if (Profiler.enabled() && !Profiler.dumpPath().empty())
    Profiler.dumpToFile(Profiler.dumpPath());
}

GcWorkerPool &Heap::gcWorkerPool() {
  if (!GcWorkers)
    GcWorkers = std::make_unique<GcWorkerPool>();
  return *GcWorkers;
}

void Heap::runOnGcWorker(const std::function<void()> &Fn) {
  gcWorkerPool().runJob(2, [&Fn](unsigned Index) {
    if (Index == 1)
      Fn();
  });
}

//===----------------------------------------------------------------------===//
// Allocation.
//===----------------------------------------------------------------------===//

void Heap::checkOwner(const char *Op) const {
  if (!Cfg.CheckThreadAffinity || onOwnerThread())
    return;
  std::fprintf(stderr,
               "gengc fatal error: %s called from a thread that does not "
               "own this heap (shards are single-threaded: cross-shard "
               "access must go through the runtime mailbox, not the raw "
               "Heap; see src/runtime/)\n",
               Op);
  std::abort();
}

uintptr_t *Heap::allocateRaw(SpaceKind Space, size_t Words) {
  checkOwner("allocation");
  GENGC_ASSERT(!NoAllocMode,
               "allocation inside a register-for-finalization thunk: the "
               "thunk runs as part of garbage collection and must not "
               "cause another collection (Section 2)");
  GENGC_ASSERT(NoGcScopeDepth == 0,
               "allocation inside a NoGcScope: the scope promises the "
               "collector cannot run, so allocating (a safepoint) here "
               "is a rooting-discipline violation");
  const size_t Bytes = Words * sizeof(uintptr_t);
  TotalBytesAllocated += Bytes;
  uintptr_t *W;
  if (!ScopeStack.empty()) {
    // In-scope allocation bumps into the innermost scope's private
    // nursery. Scope garbage is reclaimed wholesale at closeScope, so
    // it is not charged against the generation-0 collection budget;
    // the bytes that survive (escape) are charged when the scope
    // closes. StressGC still collects on schedule — its trigger is the
    // safepoint counter, not the byte budget.
    ScopedGeneration &SG = *ScopeStack.back();
    W = SG.Contexts[static_cast<unsigned>(Space)].allocate(
        *SG.ScopeArena, Space, 0, Words, /*Age=*/0,
        static_cast<uint8_t>(SG.Depth),
        SG.Donation ? SegmentInfo::FlagDonated : static_cast<uint8_t>(0));
  } else {
    BytesSinceGc += Bytes;
    if (BytesSinceGc >= Cfg.Gen0CollectBytes)
      GcPending = true;
    W = Contexts[static_cast<unsigned>(Space)][0][0].allocate(
        Segments, Space, 0, Words, /*Age=*/0);
  }
  // Allocation-site sampling: tick() is a single compare of the
  // just-updated allocation counter against the profiler's threshold
  // (UINT64_MAX when disarmed). The tagged bits recorded for survival
  // tracking follow the space's representation (pair spaces hold bare
  // cells, typed/data spaces header-tagged objects).
  if (Profiler.tick(TotalBytesAllocated))
    Profiler.recordSample(
        (Space == SpaceKind::Pair || Space == SpaceKind::WeakPair)
            ? Value::pair(reinterpret_cast<PairCell *>(W)).bits()
            : Value::object(W).bits(),
        TotalBytesAllocated);
  return W;
}

uintptr_t *Heap::allocateInGeneration(SpaceKind Space, unsigned Generation,
                                      unsigned Age, size_t Words) {
  GENGC_ASSERT(Generation < Cfg.Generations, "bad target generation");
  GENGC_ASSERT(Age < Cfg.TenureCopies, "bad target tenure age");
  return Contexts[static_cast<unsigned>(Space)][Generation][Age].allocate(
      Segments, Space, static_cast<uint8_t>(Generation), Words,
      static_cast<uint8_t>(Age));
}

void Heap::pollSafepoint() {
  if (InGc || !Cfg.AutoCollect || InSafepointCollection ||
      InPostGcHooks || NoGcScopeDepth != 0)
    return;
  // StressGC: force a full collection every StressInterval-th allocation
  // safepoint, invalidating any unrooted Value at the earliest possible
  // moment. Only public entry points poll, so multi-allocation sequences
  // inside a single Heap call (e.g. intern's string+symbol) stay atomic,
  // matching the normal safepoint contract.
  if (Cfg.StressGC && ++SafepointsSinceStress >= Cfg.StressInterval) {
    SafepointsSinceStress = 0;
    GcPending = false;
    InSafepointCollection = true;
    collect(oldestGeneration());
    if (CollectRequestHandler)
      CollectRequestHandler(*this);
    InSafepointCollection = false;
    return;
  }
  if (!GcPending)
    return;
  GcPending = false;
  unsigned G = chooseAutomaticGeneration();
  InSafepointCollection = true;
  collect(G);
  if (CollectRequestHandler)
    CollectRequestHandler(*this);
  InSafepointCollection = false;
}

unsigned Heap::chooseAutomaticGeneration() {
  // Collect generation g every CollectionRadix^g automatic collections:
  // "the older the generation, the less frequently it is collected".
  ++AutomaticCollections;
  unsigned G = 0;
  uint64_t Period = 1;
  for (unsigned I = 1; I < Cfg.Generations; ++I) {
    Period *= Cfg.CollectionRadix;
    if (AutomaticCollections % Period == 0)
      G = I;
  }
  return G;
}

Value Heap::consRaw(Value Car, Value Cdr) {
  uintptr_t *W = allocateRaw(SpaceKind::Pair, 2);
  W[0] = Car.bits();
  W[1] = Cdr.bits();
  return Value::pair(reinterpret_cast<PairCell *>(W));
}

Value Heap::cons(Value Car, Value Cdr) {
  Root RCar(*this, Car), RCdr(*this, Cdr);
  pollSafepoint();
  return consRaw(RCar, RCdr);
}

Value Heap::weakCons(Value Car, Value Cdr) {
  Root RCar(*this, Car), RCdr(*this, Cdr);
  pollSafepoint();
  uintptr_t *W = allocateRaw(SpaceKind::WeakPair, 2);
  W[0] = RCar.get().bits();
  W[1] = RCdr.get().bits();
  Value P = Value::pair(reinterpret_cast<PairCell *>(W));
  // A freshly allocated weak pair is in generation 0, so its car cannot
  // point to a younger generation; no weak remembered entry is needed
  // until it is promoted or mutated.
  return P;
}

Value Heap::makeVector(size_t Length, Value Fill) {
  Root RFill(*this, Fill);
  pollSafepoint();
  uintptr_t Header = makeHeader(ObjectKind::Vector, Length);
  uintptr_t *W = allocateRaw(SpaceKind::Typed, objectAllocWords(Header));
  W[0] = Header;
  for (size_t I = 0; I != Length; ++I)
    W[1 + I] = RFill.get().bits();
  return Value::object(W);
}

Value Heap::makeStringRaw(std::string_view Contents) {
  uintptr_t Header = makeHeader(ObjectKind::String, Contents.size());
  uintptr_t *W = allocateRaw(SpaceKind::Data, objectAllocWords(Header));
  W[0] = Header;
  // Zero the padded tail so the heap verifier sees deterministic bytes.
  size_t PayloadWords = objectAllocWords(Header) - 1;
  std::memset(W + 1, 0, PayloadWords * sizeof(uintptr_t));
  std::memcpy(W + 1, Contents.data(), Contents.size());
  return Value::object(W);
}

Value Heap::makeString(std::string_view Contents) {
  pollSafepoint();
  return makeStringRaw(Contents);
}

Value Heap::makeBytevector(size_t Length) {
  pollSafepoint();
  uintptr_t Header = makeHeader(ObjectKind::Bytevector, Length);
  uintptr_t *W = allocateRaw(SpaceKind::Data, objectAllocWords(Header));
  W[0] = Header;
  std::memset(W + 1, 0, (objectAllocWords(Header) - 1) * sizeof(uintptr_t));
  return Value::object(W);
}

Value Heap::makeFlonum(double D) {
  pollSafepoint();
  uintptr_t Header = makeHeader(ObjectKind::Flonum, 0);
  uintptr_t *W = allocateRaw(SpaceKind::Data, 2);
  W[0] = Header;
  std::memcpy(W + 1, &D, sizeof(double));
  return Value::object(W);
}

Value Heap::makeBox(Value V) {
  Root RV(*this, V);
  pollSafepoint();
  uintptr_t *W = allocateRaw(SpaceKind::Typed, 2);
  W[0] = makeHeader(ObjectKind::Box, 0);
  W[1] = RV.get().bits();
  return Value::object(W);
}

Value Heap::makeRecord(Value Tag, size_t FieldCount, Value Fill) {
  GENGC_ASSERT(FieldCount >= 1, "records have at least the tag field");
  Root RTag(*this, Tag), RFill(*this, Fill);
  pollSafepoint();
  uintptr_t Header = makeHeader(ObjectKind::Record, FieldCount);
  uintptr_t *W = allocateRaw(SpaceKind::Typed, objectAllocWords(Header));
  W[0] = Header;
  W[1] = RTag.get().bits();
  for (size_t I = 1; I != FieldCount; ++I)
    W[1 + I] = RFill.get().bits();
  return Value::object(W);
}

Value Heap::makeClosure(Value Clauses, Value Env, Value Name) {
  Root RClauses(*this, Clauses), REnv(*this, Env), RName(*this, Name);
  pollSafepoint();
  uintptr_t *W =
      allocateRaw(SpaceKind::Typed, 1 + ClosureFieldCount);
  W[0] = makeHeader(ObjectKind::Closure, ClosureFieldCount);
  W[1 + CloClauses] = RClauses.get().bits();
  W[1 + CloEnv] = REnv.get().bits();
  W[1 + CloName] = RName.get().bits();
  return Value::object(W);
}

Value Heap::makePrimitive(intptr_t Index, intptr_t MinArgs, intptr_t MaxArgs,
                          Value Name) {
  Root RName(*this, Name);
  pollSafepoint();
  uintptr_t *W = allocateRaw(SpaceKind::Typed, 1 + PrimitiveFieldCount);
  W[0] = makeHeader(ObjectKind::Primitive, PrimitiveFieldCount);
  W[1 + PrimIndex] = Value::fixnum(Index).bits();
  W[1 + PrimMinArgs] = Value::fixnum(MinArgs).bits();
  W[1 + PrimMaxArgs] = Value::fixnum(MaxArgs).bits();
  W[1 + PrimName] = RName.get().bits();
  return Value::object(W);
}

Value Heap::makePortHandle(intptr_t PortIdV, intptr_t Direction) {
  pollSafepoint();
  uintptr_t *W = allocateRaw(SpaceKind::Typed, 1 + PortHandleFieldCount);
  W[0] = makeHeader(ObjectKind::PortHandle, PortHandleFieldCount);
  W[1 + PortId] = Value::fixnum(PortIdV).bits();
  W[1 + PortDirection] = Value::fixnum(Direction).bits();
  return Value::object(W);
}

Value Heap::makeSymbolRaw(Value NameString) {
  uintptr_t *W = allocateRaw(SpaceKind::Typed, 1 + SymbolFieldCount);
  W[0] = makeHeader(ObjectKind::Symbol, SymbolFieldCount);
  W[1 + SymName] = NameString.bits();
  W[1 + SymHash] = Value::fixnum(0).bits();
  W[1 + SymPlist] = Value::nil().bits();
  return Value::object(W);
}

Value Heap::intern(std::string_view Name) {
  pollSafepoint();
  auto It = SymbolTable.find(std::string(Name));
  if (It != SymbolTable.end())
    return Value::fromBits(It->second);
  // No safepoint between these two allocations, so the fresh string
  // cannot move before the symbol captures it.
  Value Str = makeStringRaw(Name);
  Value Sym = makeSymbolRaw(Str);
  SymbolTable.emplace(std::string(Name), Sym.bits());
  return Sym;
}

std::string Heap::symbolName(Value Symbol) const {
  GENGC_ASSERT(isSymbol(Symbol), "symbolName on non-symbol");
  Value Str = objectField(Symbol, SymName);
  return std::string(stringData(Str), objectLength(Str));
}

Value Heap::makeUninternedSymbol(std::string_view Name) {
  pollSafepoint();
  Value Str = makeStringRaw(Name);
  return makeSymbolRaw(Str);
}

Value Heap::makeList(const std::vector<Value> &Elements) {
  RootVector Rooted(*this);
  for (Value V : Elements)
    Rooted.push_back(V);
  Root Result(*this, Value::nil());
  for (size_t I = Elements.size(); I != 0; --I)
    Result = cons(Rooted[I - 1], Result);
  return Result;
}

//===----------------------------------------------------------------------===//
// Barriered mutation.
//===----------------------------------------------------------------------===//

void Heap::writeBarrier(Value Container, Value V, bool WeakField) {
  checkOwner("barriered store");
  ++BarriersExecutedTotal;
  // Shared immutable containers (Generation == SharedGeneration) are
  // frozen: a store into one — even of an immediate — would be visible
  // to every shard with no synchronization and no remembered-set
  // coverage. Checked before the non-pointer early-out for that reason.
  const SegmentInfo &CInfo = segInfo(Container.heapAddress());
  if (CInfo.Generation == SharedGeneration)
    fatalError(__FILE__, __LINE__,
               "store into the shared immutable space: frozen objects "
               "are published read-only to every shard "
               "(heap/SharedImmutableSpace.h)");
  if (!V.isHeapPointer())
    return;
  if (!ScopeStack.empty()) {
    scopeBarrier(Container, V, WeakField);
    return;
  }
  if (CInfo.Generation == 0)
    return;
  const SegmentInfo &VInfo = segInfo(V.heapAddress());
  if (VInfo.Generation >= CInfo.Generation)
    return;
  if (WeakField)
    WeakRemembered[CInfo.Generation].insert(Container.bits());
  else
    Remembered[CInfo.Generation].insert(Container.bits());
}

void Heap::scopeBarrier(Value Container, Value V, bool WeakField) {
  // A store of a deeper-scope value into a shallower container is the
  // scope analogue of an old-to-young store: the container becomes an
  // evacuation root (escape) for the value's scope. Checked before the
  // generational early-outs because even a generation-0 container can
  // hold the only outside reference into a scope.
  const SegmentInfo &CInfo = segInfo(Container.heapAddress());
  if (CInfo.Generation == SharedGeneration)
    fatalError(__FILE__, __LINE__,
               "store into the shared immutable space: frozen objects "
               "are published read-only to every shard "
               "(heap/SharedImmutableSpace.h)");
  const SegmentInfo &VInfo = segInfo(V.heapAddress());
  if (VInfo.ScopeDepth > CInfo.ScopeDepth) {
    ScopedGeneration &SG = *ScopeStack[VInfo.ScopeDepth - 1];
    (WeakField ? SG.WeakEscapes : SG.Escapes).insert(Container.bits());
    return;
  }
  if (CInfo.ScopeDepth != 0)
    return; // Scope container, same-or-shallower value: the container
            // either dies with its scope or is rescanned when it
            // graduates; no set needs the edge.
  if (CInfo.Generation == 0)
    return;
  if (VInfo.Generation >= CInfo.Generation)
    return;
  if (WeakField)
    WeakRemembered[CInfo.Generation].insert(Container.bits());
  else
    Remembered[CInfo.Generation].insert(Container.bits());
}

void Heap::setCar(Value Pair, Value V) {
  GENGC_ASSERT(Pair.isPair(), "setCar on non-pair");
  writeBarrier(Pair, V, /*WeakField=*/isWeakPair(Pair));
  pairSetCarRaw(Pair, V);
}

void Heap::setCdr(Value Pair, Value V) {
  GENGC_ASSERT(Pair.isPair(), "setCdr on non-pair");
  // The cdr of a weak pair is an ordinary (strong) pointer.
  writeBarrier(Pair, V, /*WeakField=*/false);
  pairSetCdrRaw(Pair, V);
}

void Heap::vectorSet(Value Vector, size_t Index, Value V) {
  GENGC_ASSERT(isVector(Vector), "vectorSet on non-vector");
  GENGC_ASSERT(Index < objectLength(Vector), "vectorSet index out of range");
  if (Cfg.InjectedFault == GcFaultInjection::UnsoundElision &&
      !UnsoundElisionFired && V.isHeapPointer()) {
    // Deliberately mis-classify the first store that genuinely needs a
    // remembered-set entry as "initializing" and skip its barrier. The
    // dynamic verifier (VerifyElision) must abort here; without it, the
    // missing old-to-young entry must be caught by verifyHeap / the
    // fuzz oracle at the next collection.
    const SegmentInfo &CInfo = segInfo(Vector.heapAddress());
    if (CInfo.Generation != 0 &&
        segInfo(V.heapAddress()).Generation < CInfo.Generation) {
      UnsoundElisionFired = true;
      vectorSetElided(Vector, Index, V, StoreElision::Initializing);
      return;
    }
  }
  writeBarrier(Vector, V, /*WeakField=*/false);
  objectFieldSetRaw(Vector, Index, V);
}

void Heap::boxSet(Value Box, Value V) {
  GENGC_ASSERT(isBox(Box), "boxSet on non-box");
  writeBarrier(Box, V, /*WeakField=*/false);
  objectFieldSetRaw(Box, 0, V);
}

void Heap::recordSet(Value Record, size_t Index, Value V) {
  GENGC_ASSERT(isRecord(Record), "recordSet on non-record");
  writeBarrier(Record, V, /*WeakField=*/false);
  objectFieldSetRaw(Record, Index, V);
}

void Heap::objectFieldSet(Value Object, size_t Index, Value V) {
  GENGC_ASSERT(Object.isObject(), "objectFieldSet on non-object");
  GENGC_ASSERT(kindHasPointers(objectKind(Object)),
               "objectFieldSet on pointerless object");
  writeBarrier(Object, V, /*WeakField=*/false);
  objectFieldSetRaw(Object, Index, V);
}

//===----------------------------------------------------------------------===//
// Elided (unbarriered) mutation.
//===----------------------------------------------------------------------===//

void Heap::elidedStore(Value Container, Value V, StoreElision Claim) {
  checkOwner("elided store");
  ++BarriersElidedTotal;
  if (!Cfg.VerifyElision)
    return;
  // The soundness verifier: re-establish the claim dynamically. These
  // are exactly the preconditions under which writeBarrier could never
  // have inserted a remembered-set entry.
  switch (Claim) {
  case StoreElision::Initializing: {
    const SegmentInfo &CInfo = segInfo(Container.heapAddress());
    if (CInfo.Generation != 0)
      fatalError(__FILE__, __LINE__,
                 "unsound barrier elision: store classified 'initializing' "
                 "but the target is no longer in generation 0 (a safepoint "
                 "intervened between allocation and store)");
    // With request scopes, "freshly allocated" additionally means "in
    // the innermost scope": a container from outside the current scope
    // could receive an in-scope pointer, which needs the escape-set
    // barrier. An Initializing claim therefore also expires at any
    // openScope/closeScope between the allocation and the store.
    if (CInfo.ScopeDepth != scopeDepth())
      fatalError(__FILE__, __LINE__,
                 "unsound barrier elision: store classified 'initializing' "
                 "but the target was not allocated in the current "
                 "(innermost) request scope — a scope transition "
                 "intervened between allocation and store");
    return;
  }
  case StoreElision::Immediate:
    if (V.isHeapPointer())
      fatalError(__FILE__, __LINE__,
                 "unsound barrier elision: store classified 'immediate' but "
                 "the stored value is a heap pointer");
    return;
  }
}

void Heap::setCarElided(Value Pair, Value V, StoreElision Claim) {
  GENGC_ASSERT(Pair.isPair(), "setCarElided on non-pair");
  elidedStore(Pair, V, Claim);
  pairSetCarRaw(Pair, V);
}

void Heap::setCdrElided(Value Pair, Value V, StoreElision Claim) {
  GENGC_ASSERT(Pair.isPair(), "setCdrElided on non-pair");
  elidedStore(Pair, V, Claim);
  pairSetCdrRaw(Pair, V);
}

void Heap::vectorSetElided(Value Vector, size_t Index, Value V,
                           StoreElision Claim) {
  GENGC_ASSERT(isVector(Vector), "vectorSetElided on non-vector");
  GENGC_ASSERT(Index < objectLength(Vector),
               "vectorSetElided index out of range");
  elidedStore(Vector, V, Claim);
  objectFieldSetRaw(Vector, Index, V);
}

void Heap::recordSetElided(Value Record, size_t Index, Value V,
                           StoreElision Claim) {
  GENGC_ASSERT(isRecord(Record), "recordSetElided on non-record");
  elidedStore(Record, V, Claim);
  objectFieldSetRaw(Record, Index, V);
}

//===----------------------------------------------------------------------===//
// Inspection.
//===----------------------------------------------------------------------===//

unsigned Heap::generationOf(Value V) const {
  if (!V.isHeapPointer())
    return 0;
  return segInfo(V.heapAddress()).Generation;
}

unsigned Heap::scopeDepthOf(Value V) const {
  if (!V.isHeapPointer())
    return 0;
  return segInfo(V.heapAddress()).ScopeDepth;
}

bool Heap::isWeakPair(Value V) const {
  return V.isPair() &&
         segInfo(V.heapAddress()).Space == SpaceKind::WeakPair;
}

SpaceKind Heap::spaceOf(Value V) const {
  GENGC_ASSERT(V.isHeapPointer(), "spaceOf on non-heap value");
  return segInfo(V.heapAddress()).Space;
}

const SegmentInfo &Heap::exchangeInfo(uintptr_t Address) const {
  return Exchange->arena().infoFor(Address);
}

Heap::GenerationUsage Heap::generationUsage(unsigned Generation) const {
  GENGC_ASSERT(Generation < Cfg.Generations, "bad generation");
  GenerationUsage Usage;
  for (unsigned S = 0; S != NumSpaces; ++S)
    for (unsigned A = 0; A != Cfg.TenureCopies; ++A) {
      const SpaceContext &Ctx = Contexts[S][Generation][A];
      for (const SegmentRun &R : Ctx.runs())
        Usage.SegmentCount += R.SegmentCount;
      Usage.UsedBytes += Ctx.usedWords(Segments) * sizeof(uintptr_t);
    }
  // Adopted donation runs are tenured space of the oldest generation.
  if (Generation == oldestGeneration())
    for (unsigned S = 0; S != NumSpaces; ++S)
      for (const SegmentRun &R : AdoptedRuns[S]) {
        Usage.SegmentCount += R.SegmentCount;
        Usage.UsedBytes += static_cast<size_t>(R.UsedWords) *
                           sizeof(uintptr_t);
      }
  return Usage;
}

size_t Heap::liveBytes() const {
  size_t Words = 0;
  for (unsigned S = 0; S != NumSpaces; ++S)
    for (unsigned G = 0; G != Cfg.Generations; ++G)
      for (unsigned A = 0; A != Cfg.TenureCopies; ++A)
        Words += Contexts[S][G][A].usedWords(Segments);
  for (const auto &SG : ScopeStack)
    for (unsigned S = 0; S != NumSpaces; ++S)
      Words += SG->Contexts[S].usedWords(*SG->ScopeArena);
  for (unsigned S = 0; S != NumSpaces; ++S)
    for (const SegmentRun &R : AdoptedRuns[S])
      Words += R.UsedWords;
  return Words * sizeof(uintptr_t);
}

//===----------------------------------------------------------------------===//
// Guardians.
//===----------------------------------------------------------------------===//

Value Heap::makeGuardianTconc() {
  pollSafepoint();
  // (let ([z (cons #f '())]) (cons z z))
  Value Z = consRaw(Value::falseV(), Value::nil());
  return consRaw(Z, Z);
}

void Heap::guardianProtect(Value Tconc, Value Obj) {
  checkOwner("guardianProtect");
  GENGC_ASSERT(Tconc.isPair(), "guardian tconc must be a pair");
  // install-guardian adds the (obj . tconc) entry to the protected list
  // for generation 0 — or, when a participant lives in an open request
  // scope, to that scope's own list so the entry is processed at the
  // scope's close. The agent defaults to the object itself.
  protectedListFor(Obj, Tconc, Obj)
      .push_back({Obj.bits(), Tconc.bits(), Obj.bits()});
}

void Heap::guardianProtectWithAgent(Value Tconc, Value Obj, Value Agent) {
  checkOwner("guardianProtectWithAgent");
  GENGC_ASSERT(Tconc.isPair(), "guardian tconc must be a pair");
  protectedListFor(Obj, Tconc, Agent)
      .push_back({Obj.bits(), Tconc.bits(), Agent.bits()});
}

Value Heap::guardianRetrieve(Value Tconc) {
  checkOwner("guardianRetrieve");
  GENGC_ASSERT(Tconc.isPair(), "guardian tconc must be a pair");
  // Figure 4. The mutator owns the header's car; no critical section is
  // needed even if a collection intervenes, because the collector only
  // appends at the tail.
  if (pairCar(Tconc) == pairCdr(Tconc))
    return Value::falseV();
  Value X = pairCar(Tconc);
  Value Y = pairCar(X);
  setCar(Tconc, pairCdr(X));
  // Clear the vacated cell: it is sometimes in an older generation than
  // the objects it points to, and retaining the pointers "may result in
  // unnecessary storage retention". #f is an immediate, so these two
  // stores can never create an old-to-young edge — elide their barriers.
  if (Cfg.ElideBarriers) {
    setCarElided(X, Value::falseV(), StoreElision::Immediate);
    setCdrElided(X, Value::falseV(), StoreElision::Immediate);
  } else {
    setCar(X, Value::falseV());
    setCdr(X, Value::falseV());
  }
  return Y;
}

bool Heap::guardianHasPending(Value Tconc) const {
  GENGC_ASSERT(Tconc.isPair(), "guardian tconc must be a pair");
  return pairCar(Tconc) != pairCdr(Tconc);
}

Value Heap::makeGuardianObject() {
  Root Tconc(*this, makeGuardianTconc());
  pollSafepoint();
  uintptr_t *W = allocateRaw(SpaceKind::Typed, 1 + GuardianFieldCount);
  W[0] = makeHeader(ObjectKind::Guardian, GuardianFieldCount);
  W[1 + GuardTconc] = Tconc.get().bits();
  return Value::object(W);
}

void gengc::tconcAppend(Heap &H, Value Tconc, Value Obj) {
  Root RT(H, Tconc), RO(H, Obj);
  Value NewLast = H.cons(Value::falseV(), Value::falseV());
  tconcAppendWithCell(H, RT, RO, NewLast);
}

//===----------------------------------------------------------------------===//
// register-for-finalization baseline.
//===----------------------------------------------------------------------===//

uint32_t Heap::registerForFinalization(Value Obj, FinalizerThunk Thunk) {
  checkOwner("registerForFinalization");
  uint32_t Id = static_cast<uint32_t>(FinalizerThunks.size());
  FinalizerThunks.push_back(std::move(Thunk));
  FinalizeLists[0].push_back({Obj.bits(), Id});
  return Id;
}

//===----------------------------------------------------------------------===//
// Collection and roots.
//===----------------------------------------------------------------------===//

void Heap::collect(unsigned MaxGeneration) {
  checkOwner("collect");
  GENGC_ASSERT(!InGc, "re-entrant collection");
  GENGC_ASSERT(!InPostGcHooks,
               "collection requested from inside a post-GC hook: hooks "
               "may allocate but must not collect (the statistics "
               "snapshot they are reading would be clobbered)");
  GENGC_ASSERT(NoGcScopeDepth == 0,
               "explicit collection inside a NoGcScope");
  Collector C(*this);
  C.run(std::min(MaxGeneration, oldestGeneration()));
  Telemetry.recordHistory(LastStats);
  if (Telemetry.LogEnabled)
    logCollectionLine(Telemetry, LastStats);
  // Hooks run with automatic collection deferred (see addPostGcHook),
  // so a hook that allocates can never recurse into collect() and the
  // LastStats reference stays valid for the whole pass.
  InPostGcHooks = true;
  for (auto &Hook : PostGcHooks)
    Hook(*this, LastStats);
  InPostGcHooks = false;
}

void Heap::addRoot(Value *Slot) {
  checkOwner("addRoot");
  RootSlots.push_back(Slot);
}

void Heap::removeRoot(Value *Slot) {
  checkOwner("removeRoot");
  // Roots are overwhelmingly removed in LIFO order (RAII), so search
  // from the back.
  for (size_t I = RootSlots.size(); I != 0; --I) {
    if (RootSlots[I - 1] == Slot) {
      RootSlots.erase(RootSlots.begin() + static_cast<ptrdiff_t>(I - 1));
      return;
    }
  }
  GENGC_UNREACHABLE("removeRoot: slot was not registered");
}

void Heap::addRootVector(RootVector *Vec) {
  checkOwner("addRootVector");
  RootVectors.push_back(Vec);
}

void Heap::removeRootVector(RootVector *Vec) {
  checkOwner("removeRootVector");
  for (size_t I = RootVectors.size(); I != 0; --I) {
    if (RootVectors[I - 1] == Vec) {
      RootVectors.erase(RootVectors.begin() + static_cast<ptrdiff_t>(I - 1));
      return;
    }
  }
  GENGC_UNREACHABLE("removeRootVector: vector was not registered");
}

uint32_t Heap::addExternalRootScanner(ExternalRootScanner Scanner) {
  checkOwner("addExternalRootScanner");
  uint32_t Id = NextExternalScannerId++;
  ExternalRootScanners.emplace_back(Id, std::move(Scanner));
  return Id;
}

void Heap::removeExternalRootScanner(uint32_t Id) {
  checkOwner("removeExternalRootScanner");
  for (size_t I = ExternalRootScanners.size(); I != 0; --I) {
    if (ExternalRootScanners[I - 1].first == Id) {
      ExternalRootScanners.erase(ExternalRootScanners.begin() +
                                 static_cast<ptrdiff_t>(I - 1));
      return;
    }
  }
  GENGC_UNREACHABLE("removeExternalRootScanner: id was not registered");
}

//===- gc/HeapConfig.h - Heap and collector configuration -----*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tunable parameters. The paper notes that "the number of generations
/// and the promotion and tenure strategies supported by the collector are
/// under programmer control" but assumes the simple strategy this
/// collector implements: survivors of a collection of generation g move
/// to g+1 (capped at the oldest generation), and collecting g collects
/// all younger generations too.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_HEAPCONFIG_H
#define GENGC_GC_HEAPCONFIG_H

#include <cstddef>
#include <cstdint>

/// Build-time default for HeapConfig::StressGC (and fromspace
/// poisoning). The GENGC_STRESS CMake option defines this to 1 so an
/// entire build — including the test suite — runs collect-on-every-
/// allocation without touching any call site.
#ifndef GENGC_STRESS_DEFAULT
#define GENGC_STRESS_DEFAULT 0
#endif

namespace gengc {

class SharedImmutableSpace;

/// Word written over every evacuated (from-space) segment when
/// HeapConfig::PoisonFromSpace is on. The low tag bits (0b111) are not a
/// valid Value tag, and interpreting the pattern as a pointer lands far
/// outside any plausible mapping, so a stale pointer dereference faults
/// or trips a tag assert deterministically instead of reading whatever
/// the next collection happened to leave behind.
constexpr uintptr_t FromSpacePoisonPattern = 0xDEADBEEFDEADBEEFull;

/// Test-only fault injection (HeapConfig::InjectedFault), used by the
/// model-differential fuzzer (src/testing/, tools/gcfuzz/) to prove the
/// oracle actually catches collector bugs. Both faults are memory-safe
/// by construction — they corrupt the *semantics* (liveness and
/// weak-pointer answers), never the heap structure — so the fuzzer
/// reports a clean divergence instead of crashing.
enum class GcFaultInjection : uint8_t {
  None = 0,
  /// processGuardians silently drops the first resurrection of every
  /// collection: the guarded object is neither forwarded nor
  /// delivered, so a model-live object is reclaimed.
  DropFirstResurrection,
  /// fixWeakCar breaks weak cars whose target was copied (i.e. is
  /// live), inverting the paper's update-vs-break rule.
  BreakLiveWeakCar,
  /// The first vectorSet that genuinely needs a remembered-set entry
  /// (old container, younger pointer value) is deliberately
  /// mis-classified as an initializing store and skips the write
  /// barrier. With HeapConfig::VerifyElision the dynamic soundness
  /// verifier aborts at the store; without it, the missing old-to-young
  /// remembered entry is caught by Heap::verifyHeap / the fuzz oracle.
  UnsoundElision,
  /// The first closeScope drops one recorded escape: the first container
  /// in the closing scope's escape set has its into-scope strong fields
  /// cleared to #f instead of being scanned, exactly as if the write
  /// barrier had lost the escape record. The object the container kept
  /// alive dies in the evacuation while the shadow model keeps it — a
  /// clean, memory-safe divergence the oracle must catch and shrink.
  LeakScopeEscape,
  /// DonatedGraph destructors skip freeing their exchange-arena runs:
  /// a dropped (never-adopted) donation leaks its segments. The fuzz
  /// runner's exchange-ownership audit — donated segments in use must
  /// equal in-flight plus adopted — must catch and shrink it.
  LeakDonatedSegment,
};

struct HeapConfig {
  /// Virtual address space reserved for the heap; also the hard heap
  /// size limit. Committed lazily.
  size_t ArenaBytes = 512u * 1024 * 1024;

  /// Number of generations, numbered 0 (youngest) through
  /// Generations - 1 (the paper's generation n).
  unsigned Generations = 4;

  /// Automatic collection fires once this many bytes have been allocated
  /// in generation 0 (checked at allocation safepoints).
  size_t Gen0CollectBytes = 1u * 1024 * 1024;

  /// Automatic collection of generation g happens every
  /// CollectionRadix^g automatic collections ("the older the generation,
  /// the less frequently it is collected").
  unsigned CollectionRadix = 4;

  /// Tenure policy ("the promotion and tenure strategies supported by
  /// the collector are under programmer control"): an object must be
  /// copied this many times within its generation before it is promoted
  /// to the next one. 1 reproduces the paper's simple strategy
  /// (survivors of a collection of generation g move to g+1); larger
  /// values delay promotion, trading extra copying for less premature
  /// tenuring.
  unsigned TenureCopies = 1;

  /// Whether allocation safepoints may trigger collection automatically.
  /// Tests that need precise control disable this and call collect()
  /// explicitly.
  bool AutoCollect = true;

  /// Owner-thread affinity checking. A Heap is single-threaded by
  /// contract: the shard-per-thread runtime (src/runtime/) gives every
  /// worker its own private heap, and nothing in the collector is
  /// prepared for concurrent mutation. With this flag on (the default —
  /// the check is two word compares), every allocation, collection,
  /// root registration, guardian operation, and barriered store asserts
  /// that it runs on the thread that constructed the heap (or the one
  /// that last called Heap::bindToCurrentThread), so cross-shard misuse
  /// aborts at the faulting call instead of corrupting a heap.
  bool CheckThreadAffinity = true;

  /// GC worker threads for the stop-the-world scavenge (the parallel
  /// Cheney copy loop; DESIGN.md §11). 0 picks the hardware concurrency,
  /// clamped to [1, MaxGcThreads] — the per-shard default, so a fleet of
  /// shards does not oversubscribe the machine. 1 runs the exact serial
  /// collector (bit-for-bit the pre-parallel behavior, no pool, no
  /// atomics). N >= 2 scavenges with N workers: the heap's owner thread
  /// acts as worker 0 and N-1 pool threads join it for the roots /
  /// remembered-set / copy phases only; guardians, finalizers, weak
  /// pairs and the symbol table always run on the owner thread so
  /// resurrection order is schedule-independent. The GENGC_GC_THREADS
  /// environment variable overrides an *auto* (0) setting at Heap
  /// construction; an explicit 1 or N in the config always wins, so
  /// tests that pin a worker count stay pinned under CI env overrides.
  unsigned GcThreads = 0;

  /// Upper clamp for GcThreads auto-detection.
  static constexpr unsigned MaxGcThreads = 16;

  /// Maximum nesting depth of request-scoped ephemeral generations
  /// (Heap::openScope / DESIGN.md §13). Scope depth is tracked per
  /// segment in a uint8_t, so the hard ceiling is 255; the default is a
  /// sanity bound — scopes model request extents, not recursion.
  unsigned MaxScopeDepth = 8;

  //===------------------------------------------------------------------===//
  // Zero-copy inter-shard transfer (heap/SharedImmutableSpace.h,
  // runtime/SegmentTransfer.h; DESIGN.md §14).
  //===------------------------------------------------------------------===//

  /// Cross-shard payloads at least this large are transferred by segment
  /// donation (copy-out into fresh exchange-arena segments whose
  /// ownership moves to the receiver) instead of the per-object deep
  /// copy through a PinnedMessage. 0 disables donation entirely.
  size_t DonationThresholdBytes = 0;

  /// The exchange domain this heap donates into and adopts from.
  /// nullptr — the default — resolves to the process-wide
  /// SharedImmutableSpace::process() at Heap construction; tests and the
  /// fuzzer install a private instance for isolated accounting.
  SharedImmutableSpace *Exchange = nullptr;

  /// When true, the symbol intern table holds its symbols weakly:
  /// symbols reachable only from the table are reclaimed and their
  /// entries dropped, as in Friedman and Wise's scatter-table collection
  /// (reference [6] of the paper, used by Chez Scheme for oblist
  /// entries).
  bool WeakSymbolTable = true;

  //===------------------------------------------------------------------===//
  // Correctness-stress tooling. These knobs make rooting bugs (a bare
  // Value held in a C++ local across an allocation) fail loudly and
  // deterministically instead of corrupting the heap thousands of
  // allocations later.
  //===------------------------------------------------------------------===//

  /// Forces a *full* collection at every StressInterval-th allocation
  /// safepoint, so any unrooted Value is invalidated at the earliest
  /// opportunity. Stress collections respect AutoCollect: a heap
  /// configured for manual collection (tests that need precise control
  /// over when objects move) is never stress-collected. Defaults on when
  /// the build sets GENGC_STRESS_DEFAULT (the GENGC_STRESS CMake
  /// option); the GENGC_STRESS environment variable ("1"/"0") overrides
  /// either default at Heap construction.
  bool StressGC = GENGC_STRESS_DEFAULT != 0;

  /// Collect on every Nth allocation safepoint under StressGC. 1 (the
  /// default) collects on every allocation.
  unsigned StressInterval = 1;

  /// Deliberate collector bug for fuzzer validation (see GcFaultInjection
  /// above). Always None outside tools/gcfuzz and the fuzz tests.
  GcFaultInjection InjectedFault = GcFaultInjection::None;

  /// Master switch for compile-time write-barrier elision. When on, the
  /// bytecode compiler runs BarrierAnalysis and rewrites provably
  /// initializing / provably immediate stores to unbarriered forms, and
  /// the VM and heap internals use the Heap::*Initializing fast paths
  /// for frame construction. When off, every store takes the full
  /// writeBarrier path (the elision-differential baseline).
  bool ElideBarriers = true;

  /// Dynamic soundness verifier for elided stores: every unbarriered
  /// store re-checks its claimed precondition (Initializing: the target
  /// is still in generation 0; Immediate: the value is a non-pointer)
  /// and aborts with a diagnostic on violation. Defaults on in
  /// GENGC_STRESS builds; a runtime flag (rather than a compile-time
  /// one) so Release-build tests can exercise the verifier too.
  bool VerifyElision = GENGC_STRESS_DEFAULT != 0;

  /// Fill evacuated from-space segments with FromSpacePoisonPattern at
  /// the end of every collection. Any surviving stale pointer then reads
  /// poison instead of plausible-looking dead objects. Defaults to the
  /// stress default; enabled automatically whenever StressGC is enabled
  /// through the environment.
  bool PoisonFromSpace = GENGC_STRESS_DEFAULT != 0;

  //===------------------------------------------------------------------===//
  // Observability (gc/telemetry/). Phase timing is always on; these
  // knobs gate the optional reporters, whose disabled path is a single
  // branch on a flag. The GENGC_GC_LOG and GENGC_GC_TRACE environment
  // variables override the first two at Heap construction (see
  // gc/telemetry/Telemetry.h).
  //===------------------------------------------------------------------===//

  /// One-line report to stderr after every collection (the moral
  /// equivalent of Chez Scheme's collect-notify; also toggled at
  /// runtime by (collect-notify bool) / Heap::setCollectNotify).
  bool GcLog = false;

  /// Record typed GC events (collections, phase spans, guardian
  /// resurrections, promotions, segment traffic) into the telemetry
  /// ring. GENGC_GC_TRACE=<path> additionally dumps the ring as a
  /// Chrome trace_event JSON file when the heap is destroyed.
  bool GcTrace = false;

  /// Event-ring capacity when tracing is enabled; wrapping keeps the
  /// newest events.
  size_t TelemetryRingCapacity = 4096;

  /// Per-collection statistics retained in the rolling history window
  /// that feeds the per-generation survival-rate gauges.
  size_t TelemetryHistoryDepth = 64;

  /// Pause intervals retained for minimum-mutator-utilization curves
  /// (telemetry/Mmu.h). Always on — one 16-byte append per collection;
  /// wrapping keeps the newest clips. 0 disables retention.
  size_t PauseClipCapacity = 8192;

  /// Pause SLO target: collections longer than this many nanoseconds
  /// increment GcTelemetry::SloPauseViolations (surfaced in (gc-stats)
  /// and fleet-merged). 0 disables the ledger.
  uint64_t SloMaxPauseNanos = 0;

  /// Allocation-site profiler sampling interval: one sample is taken
  /// every ~this many allocated bytes (byte-countdown in the
  /// allocation fast path; see gc/telemetry/AllocProfiler.h). 0 — the
  /// default — disables sampling entirely; the fast-path cost is then
  /// one counter subtract and an untaken branch. The GENGC_GC_PROFILE
  /// environment variable ("1" or a dump path) enables profiling at
  /// DefaultProfileSampleBytes at Heap construction;
  /// GENGC_GC_PROFILE_BYTES overrides the interval.
  size_t ProfileSampleBytes = 0;

  /// Interval used when profiling is enabled through the environment
  /// or a tool flag without an explicit rate.
  static constexpr size_t DefaultProfileSampleBytes = 64 * 1024;

  /// Sampled-object table capacity: live sampled objects tracked for
  /// survival attribution. When full, new samples still count bytes to
  /// their site but skip survival tracking.
  size_t ProfileTableCapacity = 64 * 1024;
};

} // namespace gengc

#endif // GENGC_GC_HEAPCONFIG_H

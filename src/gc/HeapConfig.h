//===- gc/HeapConfig.h - Heap and collector configuration -----*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tunable parameters. The paper notes that "the number of generations
/// and the promotion and tenure strategies supported by the collector are
/// under programmer control" but assumes the simple strategy this
/// collector implements: survivors of a collection of generation g move
/// to g+1 (capped at the oldest generation), and collecting g collects
/// all younger generations too.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_HEAPCONFIG_H
#define GENGC_GC_HEAPCONFIG_H

#include <cstddef>

namespace gengc {

struct HeapConfig {
  /// Virtual address space reserved for the heap; also the hard heap
  /// size limit. Committed lazily.
  size_t ArenaBytes = 512u * 1024 * 1024;

  /// Number of generations, numbered 0 (youngest) through
  /// Generations - 1 (the paper's generation n).
  unsigned Generations = 4;

  /// Automatic collection fires once this many bytes have been allocated
  /// in generation 0 (checked at allocation safepoints).
  size_t Gen0CollectBytes = 1u * 1024 * 1024;

  /// Automatic collection of generation g happens every
  /// CollectionRadix^g automatic collections ("the older the generation,
  /// the less frequently it is collected").
  unsigned CollectionRadix = 4;

  /// Tenure policy ("the promotion and tenure strategies supported by
  /// the collector are under programmer control"): an object must be
  /// copied this many times within its generation before it is promoted
  /// to the next one. 1 reproduces the paper's simple strategy
  /// (survivors of a collection of generation g move to g+1); larger
  /// values delay promotion, trading extra copying for less premature
  /// tenuring.
  unsigned TenureCopies = 1;

  /// Whether allocation safepoints may trigger collection automatically.
  /// Tests that need precise control disable this and call collect()
  /// explicitly.
  bool AutoCollect = true;

  /// When true, the symbol intern table holds its symbols weakly:
  /// symbols reachable only from the table are reclaimed and their
  /// entries dropped, as in Friedman and Wise's scatter-table collection
  /// (reference [6] of the paper, used by Chez Scheme for oblist
  /// entries).
  bool WeakSymbolTable = true;
};

} // namespace gengc

#endif // GENGC_GC_HEAPCONFIG_H

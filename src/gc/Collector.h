//===- gc/Collector.h - Stop-and-copy generational collector --*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One collection cycle. "The collector performs a stop-and-copy
/// collection from the generations being collected into the target
/// generation" (Section 4). A Collector instance is created per
/// collection by Heap::collect and discarded afterwards.
///
/// Phase order, following Section 4:
///   1. detach the from-space (runs of every collected generation) and
///      flag its segments,
///   2. forward roots and the remembered sets of older generations,
///   3. Cheney-sweep the to-space contexts to a fixpoint,
///   4. process the guardian protected lists (the paper's pend-hold /
///      pend-final loop with kleene-sweep between rounds),
///   5. process register-for-finalization lists (baseline mechanism),
///   6. second pass over weak pairs — after the protected lists, "so if
///      the car field of a weak pair points to an object that has been
///      salvaged, the object will still be in the car field after
///      collection",
///   7. update the (weak) symbol table, free the from-space, run queued
///      finalizer thunks with allocation disabled.
///
/// Tenure policy: with HeapConfig::TenureCopies == 1 every survivor of a
/// collection of generation g is copied into generation min(g+1, n) —
/// the paper's simple strategy, and the to-space is a single context per
/// space. With TenureCopies == K > 1 a survivor of (generation i, age a)
/// is copied into (i, a+1) until a+1 == K promotes it to (i+1, 0), so
/// the to-space spans several (generation, age) contexts; copying can
/// then leave an object in a generation OLDER than some object it
/// points to, which the sweep re-records in the remembered sets.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_GC_COLLECTOR_H
#define GENGC_GC_COLLECTOR_H

#include <cstdint>
#include <vector>

#include "gc/Heap.h"

namespace gengc {

class ParallelScavenge;
struct ScopedGeneration;

class Collector {
public:
  explicit Collector(Heap &H) : H(H) {}

  /// Collects generations 0..G.
  void run(unsigned G);

  /// Closes the innermost request scope (gc/ScopedGeneration.h): the
  /// scope's segments become the from-space, survivors graduate into the
  /// enclosing scope (or the ordinary generation 0), and the scope's own
  /// guardian fixpoint, weak pass, and symbol-table pass run over the
  /// dying extent. NOT a collection: fills \p Out instead of GcStats,
  /// and bumps no collection counters. Defined in gc/ScopedGeneration.cpp.
  void runScopeClose(ScopedGeneration &Scope, ScopeCloseStats &Out);

private:
  /// The parallel scavenge reuses the serial scan/sweep helpers on
  /// worker threads by redirecting forward() and maybeReRemember()
  /// through Par while the worker fixpoint runs (see
  /// gc/ParallelScavenge.h).
  friend class ParallelScavenge;

  /// Position within a SpaceContext's run list, in allocation order.
  struct SweepCursor {
    size_t RunIndex = 0;
    size_t OffsetWords = 0;
  };

  //===--- Copying --------------------------------------------------------===//

  /// The paper's forward(obj): copies a from-space object to its target
  /// (generation, age) context — preserving its space — and installs a
  /// forwarding marker; returns the (possibly pre-existing) new
  /// location. Non-heap values and objects outside the from-space are
  /// returned unchanged.
  Value forward(Value V);

  /// Target (generation, age) for a survivor of (\p Gen, \p Age) under
  /// the tenure policy.
  void targetFor(unsigned Gen, unsigned Age, unsigned &NewGen,
                 unsigned &NewAge) const;

  /// The paper's forwarded?(obj): "true when obj has been forwarded
  /// during this collection or when it resides in a generation older
  /// than those being collected". Also true for non-heap values.
  bool isForwarded(Value V) const;

  /// The paper's get-fwd-addr(obj): the forwarding address, or the
  /// object itself when it was not subject to collection.
  Value forwardedAddress(Value V) const;

  /// Survival sweep of the allocation-site profiler's sampled-object
  /// table: forwarded samples have their bits updated and credit
  /// SurvivedBytes, dead ones credit DeadBytes and leave the table.
  /// Runs while from-space is still intact (the table is not a root —
  /// sampling never keeps an object alive).
  void sweepAllocProfiler();

  void forwardSlot(Value *Slot) { *Slot = forward(*Slot); }
  void forwardWord(uintptr_t *Word) {
    *Word = forward(Value::fromBits(*Word)).bits();
  }

  //===--- Sweeping -------------------------------------------------------===//

  /// The paper's kleene-sweep(g): "iteratively sweeps copied objects
  /// until there are no newly copied objects to sweep", over every
  /// to-space context.
  void kleeneSweep();
  /// Sweeps one (space, generation, age) context from its cursor to the
  /// allocation frontier. Returns true if any object was processed.
  bool sweepContext(SpaceKind Space, unsigned Gen, unsigned Age);
  /// The shared walk under sweepContext: sweeps \p Ctx from \p Cur to
  /// its allocation frontier. Also used for the scope-close targets and
  /// the open-scope root scan, which sweep contexts outside the
  /// Contexts[][][] array.
  bool sweepRange(Arena &A, SpaceContext &Ctx, SweepCursor &Cur,
                  SpaceKind Space, unsigned ContainerGen);
  void sweepPairAt(uintptr_t *Cell, bool Weak, unsigned ContainerGen);
  void sweepTypedAt(uintptr_t *Header, unsigned ContainerGen);
  /// Re-records \p Container in the remembered set if \p FieldBits now
  /// points below ContainerGen (only possible with TenureCopies > 1).
  void maybeReRemember(uintptr_t ContainerBits, unsigned ContainerGen,
                       uintptr_t FieldBits);

  //===--- Phases ---------------------------------------------------------===//

  void detachFromSpace(unsigned G);
  void forwardRoots();
  void processRememberedSets(unsigned G);
  void forwardRememberedObject(Value Container);
  bool pointsBelowGeneration(Value Container, unsigned Generation) const;
  void processGuardians(unsigned G);
  void appendToTconc(Value Tconc, Value Obj);
  void processFinalizeLists(unsigned G, std::vector<uint32_t> &RunQueue);
  void weakPairPass(unsigned G);
  void fixWeakCar(Value WeakPair);
  void updateSymbolTable();
  void freeFromSpace();

  /// Protected-list index for an entry with the given (already
  /// forwarded) participants: the youngest generation among them, so
  /// the entry is revisited whenever any participant may move or die.
  /// With TenureCopies == 1 this is always the target generation,
  /// matching the paper.
  unsigned entryListIndex(Value Obj, Value Tconc, Value Agent) const;

  /// Re-parks a surviving (already forwarded) guardian entry: on the
  /// protected list of the deepest open scope any participant lives in,
  /// else on Protected[entryListIndex(...)].
  void parkProtectedEntry(Value Obj, Value Tconc, Value Agent);

  //===--- Request scopes (gc/ScopedGeneration.cpp) ----------------------===//

  /// Ordinary collections with scopes open treat every scope object as
  /// an uncollected root container: one full scan of each open scope's
  /// contexts, forwarding strong fields (weak cars are left for
  /// scopeWeakContextPass). Runs in the Roots phase; scopes force the
  /// serial path, so no worker coordination is needed.
  void scanOpenScopes();
  /// Weak-car pass over every open scope's weak-pair context (their cars
  /// may point into the collected generations).
  void scopeWeakContextPass();
  /// Rebuilds every open scope's escape sets after the copy: from-space
  /// containers that were forwarded are re-inserted under their new
  /// bits, dead ones are dropped. Must run before freeFromSpace (it
  /// reads forwarding markers).
  void fixupScopeEscapes();

  /// Scope-close helpers (defined in gc/ScopedGeneration.cpp).
  SpaceContext &scopeTargetContext(unsigned Sp);
  /// Arena the scope-close target contexts allocate from: the enclosing
  /// scope's arena (the exchange arena when closing into a donation
  /// scope), or the heap's private arena when survivors graduate to the
  /// ordinary generation 0.
  Arena &scopeTargetArena();
  uintptr_t *scopeAllocate(SpaceKind Space, size_t Words);
  void scopeDetachFromSpace(ScopedGeneration &Scope);
  void scopeForwardEscapeRoots(ScopedGeneration &Scope);
  void scopeWeakPairPass(ScopedGeneration &Scope);
  void propagateScopeEscapes(ScopedGeneration &Scope);

  Heap &H;
  GcStats S;
  unsigned T = 0; ///< Target generation (the paper's min(g+1, n)).
  /// Non-null only during runScopeClose: the scope being closed. The
  /// shared machinery (forward, kleeneSweep, appendToTconc,
  /// processGuardians) branches on it to target the enclosing extent
  /// instead of the generation ladder.
  ScopedGeneration *ClosingScope = nullptr;
  /// Enclosing scope survivors graduate into; null when the closing
  /// scope is outermost (survivors go to the ordinary generation 0).
  ScopedGeneration *TargetScope = nullptr;
  /// Non-null only while a parallel scavenge's worker fixpoint runs;
  /// forward() and maybeReRemember() redirect through it so the serial
  /// sweep helpers above work unchanged on GC worker threads.
  ParallelScavenge *Par = nullptr;

  std::vector<SegmentRun> FromRuns[NumSpaces];
  /// From-space runs that live in the exchange arena rather than the
  /// heap's private arena: adopted donation runs taken from
  /// Heap::AdoptedRuns during a full collection, and the segments of a
  /// closing donation scope that failed the wholesale-transfer check.
  /// Freed through the exchange arena in freeFromSpace.
  std::vector<SegmentRun> FromExchangeRuns[NumSpaces];
  SweepCursor Cursors[NumSpaces][MaxGenerations][MaxTenureCopies];
  /// Start positions of the weak-pair regions copied during this
  /// collection, for the second (weak) pass.
  SweepCursor WeakScanStarts[MaxGenerations][MaxTenureCopies];
  /// Scope-close sweep cursors over the four target contexts, and the
  /// weak-pair target's scan start for the scope weak pass.
  SweepCursor ScopeCursors[NumSpaces];
  SweepCursor ScopeWeakScanStart;
};

} // namespace gengc

#endif // GENGC_GC_COLLECTOR_H

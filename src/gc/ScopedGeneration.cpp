//===- gc/ScopedGeneration.cpp - Request-scoped generations ----*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scope lifecycle (Heap::openScope / Heap::closeScope) and the
/// scope-close evacuation (Collector::runScopeClose). A close is a
/// miniature stop-and-copy whose from-space is the scope's segments and
/// whose roots are the real roots plus the scope's escape set; it reuses
/// the collector's forwarding, Cheney sweep, Section 4 guardian
/// fixpoint, weak-pair, finalizer, and symbol-table machinery, with
/// forward() retargeted at the enclosing extent. It is deliberately NOT
/// a collection: no GcStats, no collection counters, no survival
/// history — its numbers land in ScopeCloseStats / ScopeTotals.
///
//===----------------------------------------------------------------------===//

#include "gc/ScopedGeneration.h"

#include <algorithm>

#include "gc/Collector.h"
#include "gc/telemetry/Telemetry.h"

using namespace gengc;

//===----------------------------------------------------------------------===//
// Heap-side lifecycle.
//===----------------------------------------------------------------------===//

void Heap::openScope() {
  checkOwner("openScope");
  GENGC_ASSERT(!InGc, "openScope during a collection");
  GENGC_ASSERT(!NoAllocMode, "openScope inside a finalizer thunk");
  GENGC_ASSERT(NoGcScopeDepth == 0, "openScope inside a NoGcScope");
  GENGC_ASSERT(ScopeStack.size() < Cfg.MaxScopeDepth,
               "scope nesting deeper than HeapConfig::MaxScopeDepth");
  ScopeStack.push_back(std::make_unique<ScopedGeneration>(
      static_cast<unsigned>(ScopeStack.size()) + 1, &Segments,
      /*Donation=*/false));
  ++ScopeTotalsRec.ScopesOpened;
  if (ScopeStack.size() > ScopeTotalsRec.MaxDepth)
    ScopeTotalsRec.MaxDepth = ScopeStack.size();
}

void Heap::closeScope() {
  checkOwner("closeScope");
  GENGC_ASSERT(!InGc, "closeScope during a collection");
  GENGC_ASSERT(!NoAllocMode, "closeScope inside a finalizer thunk");
  GENGC_ASSERT(NoGcScopeDepth == 0, "closeScope inside a NoGcScope");
  GENGC_ASSERT(!ScopeStack.empty(), "closeScope with no open scope");

  ScopeCloseStats Out;
  {
    // The stack still holds the closing scope while the evacuation runs:
    // barriered stores the evacuation itself performs (tconc delivery)
    // classify against the full depth ladder.
    Collector C(*this);
    C.runScopeClose(*ScopeStack.back(), Out);
  }
  LastScopeClose = Out;
  ScopeTotalsRec.accumulate(Out);
  ScopeStack.pop_back();

  if (ScopeStack.empty()) {
    // Graduates landed in the ordinary generation 0: charge them to the
    // allocation budget so the automatic policy sees them. (Graduates
    // into an enclosing scope are charged when that scope closes.)
    BytesSinceGc += Out.BytesEvacuated;
    if (BytesSinceGc >= Cfg.Gen0CollectBytes)
      GcPending = true;
  }

  if (CloseScopeHook)
    CloseScopeHook(*this, LastScopeClose);
}

std::vector<Heap::ProtectedEntry> &
Heap::protectedListFor(Value Obj, Value Tconc, Value Agent) {
  unsigned Deepest = 0;
  for (Value V : {Obj, Tconc, Agent})
    Deepest = std::max(Deepest, scopeDepthOf(V));
  if (Deepest != 0)
    return ScopeStack[Deepest - 1]->Protected;
  return Protected[0];
}

//===----------------------------------------------------------------------===//
// The scope-close evacuation.
//===----------------------------------------------------------------------===//

SpaceContext &Collector::scopeTargetContext(unsigned Sp) {
  if (TargetScope)
    return TargetScope->Contexts[Sp];
  return H.Contexts[Sp][0][0];
}

uintptr_t *Collector::scopeAllocate(SpaceKind Space, size_t Words) {
  const unsigned Sp = static_cast<unsigned>(Space);
  if (TargetScope)
    return TargetScope->Contexts[Sp].allocate(
        *TargetScope->ScopeArena, Space, /*Generation=*/0, Words, /*Age=*/0,
        static_cast<uint8_t>(TargetScope->Depth),
        TargetScope->Donation ? SegmentInfo::FlagDonated
                              : static_cast<uint8_t>(0));
  return H.Contexts[Sp][0][0].allocate(H.Segments, Space, /*Generation=*/0,
                                       Words, /*Age=*/0, /*ScopeDepth=*/0);
}

Arena &Collector::scopeTargetArena() {
  return TargetScope ? *TargetScope->ScopeArena : H.Segments;
}

void Collector::scopeDetachFromSpace(ScopedGeneration &Scope) {
  // Donation scopes live in the exchange arena; their dead segments are
  // freed back there (FromExchangeRuns), never into the private arena's
  // free list.
  Arena &A = *Scope.ScopeArena;
  const bool Exchange = &A != &H.Segments;
  for (unsigned Sp = 0; Sp != NumSpaces; ++Sp) {
    std::vector<SegmentRun> Runs = Scope.Contexts[Sp].takeRuns(A);
    for (const SegmentRun &R : Runs) {
      for (uint32_t Seg = R.FirstSegment;
           Seg != R.FirstSegment + R.SegmentCount; ++Seg)
        A.infoAt(Seg).Flags |= SegmentInfo::FlagFromSpace;
      S.BytesInFromSpace +=
          static_cast<uint64_t>(R.UsedWords) * sizeof(uintptr_t);
    }
    std::vector<SegmentRun> &Dst = Exchange ? FromExchangeRuns[Sp]
                                            : FromRuns[Sp];
    Dst.insert(Dst.end(), Runs.begin(), Runs.end());
  }
}

void Collector::scopeForwardEscapeRoots(ScopedGeneration &Scope) {
  // The escape set plays the remembered set's role: each recorded
  // container lives outside the scope and may hold the only strong
  // pointer into it. Conservative like a remembered set — a container
  // whose into-scope field was later overwritten is scanned harmlessly.
  bool LeakOne = H.Cfg.InjectedFault == GcFaultInjection::LeakScopeEscape &&
                 !H.ScopeLeakFired;
  for (uintptr_t Bits : Scope.Escapes.takeSnapshot()) {
    Value C = Value::fromBits(Bits);
    if (LeakOne) {
      // Injected bug: lose this escape record, exactly as if the write
      // barrier had missed the store. Memory-safe by construction: the
      // into-scope fields are cleared to #f rather than left dangling,
      // so the divergence is semantic (an object the model keeps alive
      // dies), never a wild pointer.
      LeakOne = false;
      H.ScopeLeakFired = true;
      auto ClearIfFromSpace = [&](uintptr_t &FieldBits) {
        Value F = Value::fromBits(FieldBits);
        if (F.isHeapPointer() &&
            H.segInfo(F.heapAddress()).isFromSpace())
          FieldBits = Value::falseV().bits();
      };
      if (C.isPair()) {
        PairCell *Cell = C.pairCell();
        if (H.segInfo(C.heapAddress()).Space != SpaceKind::WeakPair)
          ClearIfFromSpace(Cell->Car);
        ClearIfFromSpace(Cell->Cdr);
      } else {
        uintptr_t *Header = C.objectHeader();
        const size_t Fields = objectPointerFieldCount(*Header);
        for (size_t I = 0; I != Fields; ++I)
          ClearIfFromSpace(Header[1 + I]);
      }
      continue;
    }
    forwardRememberedObject(C);
    ++S.RememberedObjectsScanned;
  }
}

void Collector::scopeWeakPairPass(ScopedGeneration &Scope) {
  // (a) Weak pairs evacuated into the target weak context this close:
  // their cars may still point into the dying scope — update or break,
  // per the paper's rule. Guardian-salvaged objects were forwarded by
  // the fixpoint before this pass, so they update rather than break.
  const unsigned Sp = static_cast<unsigned>(SpaceKind::WeakPair);
  SpaceContext &Ctx = scopeTargetContext(Sp);
  Arena &TA = scopeTargetArena();
  SweepCursor Cur = ScopeWeakScanStart;
  while (true) {
    const std::vector<SegmentRun> &Runs = Ctx.runs();
    if (Cur.RunIndex >= Runs.size())
      break;
    const size_t Used = Ctx.usedWordsOf(TA, Cur.RunIndex);
    if (Cur.OffsetWords >= Used) {
      if (Cur.RunIndex + 1 < Runs.size()) {
        ++Cur.RunIndex;
        Cur.OffsetWords = 0;
        continue;
      }
      break;
    }
    // rootcheck:allow(segment-base) — weak pass replays the sweep walk.
    uintptr_t *Cell =
        TA.segmentBase(Runs[Cur.RunIndex].FirstSegment) +
        Cur.OffsetWords;
    fixWeakCar(Value::pair(reinterpret_cast<PairCell *>(Cell)));
    Cur.OffsetWords += 2;
  }

  // (b) Registered weak escapes: weak pairs outside the scope whose car
  // may point into it. fixWeakCar updates-or-breaks and re-records the
  // generational WeakRemembered edge itself; the scope analogue (car
  // graduated into a still-open enclosing scope) is re-recorded here.
  for (uintptr_t Bits : Scope.WeakEscapes.takeSnapshot()) {
    Value W = Value::fromBits(Bits);
    fixWeakCar(W);
    Value Car = pairCar(W);
    if (!Car.isHeapPointer())
      continue;
    const SegmentInfo &WI = H.segInfo(W.heapAddress());
    const SegmentInfo &CI = H.segInfo(Car.heapAddress());
    if (CI.ScopeDepth > WI.ScopeDepth)
      H.ScopeStack[CI.ScopeDepth - 1]->WeakEscapes.insert(Bits);
  }
  Scope.WeakEscapes.clear();
}

void Collector::propagateScopeEscapes(ScopedGeneration &Scope) {
  // Replay the barrier classification over every escape container's
  // strong fields: edges into the dying scope were rewritten to point at
  // graduated copies, which may themselves be escapes of the (still
  // open) enclosing scope — or old-to-young edges when the closing scope
  // was outermost and graduates landed in the ordinary generation 0.
  auto Record = [&](Value C, const SegmentInfo &CInfo, uintptr_t FieldBits) {
    Value F = Value::fromBits(FieldBits);
    if (!F.isHeapPointer())
      return;
    const SegmentInfo &FInfo = H.segInfo(F.heapAddress());
    if (FInfo.ScopeDepth > CInfo.ScopeDepth) {
      H.ScopeStack[FInfo.ScopeDepth - 1]->Escapes.insert(C.bits());
    } else if (CInfo.ScopeDepth == 0 && FInfo.ScopeDepth == 0 &&
               CInfo.Generation > 0 &&
               FInfo.Generation < CInfo.Generation) {
      H.Remembered[CInfo.Generation].insert(C.bits());
    }
  };
  for (uintptr_t Bits : Scope.Escapes.takeSnapshot()) {
    Value C = Value::fromBits(Bits);
    const SegmentInfo &CInfo = H.segInfo(C.heapAddress());
    if (C.isPair()) {
      PairCell *Cell = C.pairCell();
      if (CInfo.Space != SpaceKind::WeakPair)
        Record(C, CInfo, Cell->Car);
      Record(C, CInfo, Cell->Cdr);
    } else {
      uintptr_t *Header = C.objectHeader();
      const size_t Fields = objectPointerFieldCount(*Header);
      for (size_t I = 0; I != Fields; ++I)
        Record(C, CInfo, Header[1 + I]);
    }
  }
  Scope.Escapes.clear();
}

void Collector::runScopeClose(ScopedGeneration &Scope, ScopeCloseStats &Out) {
  GcTelemetry &Tel = H.Telemetry;
  const uint64_t StartNanos = Tel.now();
  H.InGc = true;
  ClosingScope = &Scope;
  TargetScope =
      Scope.Depth >= 2 ? H.ScopeStack[Scope.Depth - 2].get() : nullptr;
  T = 0;
  // Not a collection: events recorded mid-close (none today) would name
  // the last completed collection, and no counters are bumped.
  S.CollectionIndex = H.Totals.Collections;

  // From-space = the scope's segments; sweep targets = the enclosing
  // extent's contexts, from their pre-close frontiers.
  scopeDetachFromSpace(Scope);
  for (unsigned Sp = 0; Sp != NumSpaces; ++Sp) {
    SpaceContext &Ctx = scopeTargetContext(Sp);
    if (Ctx.runs().empty()) {
      ScopeCursors[Sp] = SweepCursor{0, 0};
    } else {
      size_t Last = Ctx.runs().size() - 1;
      ScopeCursors[Sp] =
          SweepCursor{Last, Ctx.usedWordsOf(scopeTargetArena(), Last)};
    }
  }
  ScopeWeakScanStart = ScopeCursors[static_cast<unsigned>(SpaceKind::WeakPair)];

  // Roots: the real roots (plus the strong symbol table) and the escape
  // set. Outer scopes need no full scan — any outer container holding a
  // pointer into this scope was recorded by the write barrier, because
  // initializing stores can only ever point outward (a fresh container
  // is always innermost).
  forwardRoots();
  scopeForwardEscapeRoots(Scope);
  kleeneSweep();

  // The paper's Section 4 fixpoint over the scope's own registrations:
  // resurrection order, tconc delivery, and re-guarding at scope exit
  // behave exactly as in a full collection of the dying extent.
  processGuardians(0);

  std::vector<uint32_t> ThunkQueue;
  processFinalizeLists(0, ThunkQueue);
  scopeWeakPairPass(Scope);
  updateSymbolTable();
  propagateScopeEscapes(Scope);

  // The profiler sweep must read forwarding markers, so it runs while
  // from-space is still intact.
  if (H.Profiler.enabled())
    sweepAllocProfiler();
  freeFromSpace();

  H.InGc = false;
  S.FinalizerThunksRun = ThunkQueue.size();
  S.DurationNanos = Tel.now() - StartNanos;
  // A close is a pause like any other: it participates in the MMU
  // curves and the SLO ledger even though it is not a collection.
  Tel.recordPause({StartNanos, S.DurationNanos});

  Out.Depth = Scope.Depth;
  Out.ObjectsEvacuated = S.ObjectsCopied;
  Out.BytesEvacuated = S.BytesCopied;
  Out.BytesInScope = S.BytesInFromSpace;
  Out.SegmentsFreed = S.SegmentsFreed;
  Out.ProtectedEntriesVisited = S.ProtectedEntriesVisited;
  Out.GuardianObjectsSaved = S.GuardianObjectsSaved;
  Out.ProtectedEntriesKept = S.ProtectedEntriesKept;
  Out.GuardianEntriesDropped = S.GuardianEntriesDropped;
  Out.GuardianLoopIterations = S.GuardianLoopIterations;
  Out.WeakPairsExamined = S.WeakPairsExamined;
  Out.WeakPointersBroken = S.WeakPointersBroken;
  Out.FinalizerThunksRun = S.FinalizerThunksRun;
  Out.SymbolsDropped = S.SymbolsDropped;
  Out.DurationNanos = S.DurationNanos;

  // Dickey-style finalization thunks: allocation stays disabled.
  if (!ThunkQueue.empty()) {
    H.NoAllocMode = true;
    for (uint32_t Id : ThunkQueue)
      H.FinalizerThunks[Id]();
    H.NoAllocMode = false;
  }
}

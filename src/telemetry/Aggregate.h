//===- telemetry/Aggregate.h - Cross-shard GC aggregation -----*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fleet view over per-heap telemetry — the fleet tier's roll-up.
/// Every Heap keeps its own GcTotals, pause recorder, and pause clips;
/// the shard runtime samples one ShardGcSample per shard (on the
/// owning thread, so no heap is read concurrently) and
/// aggregateShards() folds the fleet into combined totals, merged
/// pause percentiles (the p99 a request would see landing on *any*
/// shard), the fleet MMU curve (worst shard per window — utilization
/// is only as good as the shard you landed on), and the summed pause
/// SLO ledger.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_TELEMETRY_AGGREGATE_H
#define GENGC_TELEMETRY_AGGREGATE_H

#include <cstdint>
#include <string>
#include <vector>

#include "gc/GcStats.h"
#include "telemetry/LatencyRecorder.h"
#include "telemetry/Mmu.h"

namespace gengc {

/// One shard's GC telemetry, sampled on the shard's own thread.
struct ShardGcSample {
  uint32_t ShardId = 0;
  GcTotals Totals;
  /// Per-collection pause latencies (HDR; mergeable across shards).
  LatencyRecorder Pauses;
  /// Time-ordered pause intervals on the shard's own clock, for MMU.
  std::vector<PauseClip> Clips;
  /// Wall-clock span of the shard's mutator (nanos since its heap
  /// epoch at sample time); the MMU denominator.
  uint64_t MutatorNanos = 0;
  uint64_t BytesAllocated = 0;
  /// Pauses over HeapConfig::SloMaxPauseNanos (0 when unset).
  uint64_t SloPauseViolations = 0;
};

/// The fleet roll-up.
struct FleetGcStats {
  size_t Shards = 0;
  GcTotals Combined; ///< Field-wise sum over shards.
  uint64_t TotalBytesAllocated = 0;
  /// Merged per-collection pause distribution of every shard.
  LatencyRecorder Pauses;
  uint64_t PauseP50Nanos = 0;
  uint64_t PauseP99Nanos = 0;
  uint64_t PauseP999Nanos = 0;
  uint64_t PauseMaxNanos = 0;
  /// Standard MMU curve; each point is the *worst* shard's utilization
  /// at that window.
  std::vector<MmuPoint> Mmu;
  uint64_t SloPauseViolations = 0; ///< Summed over shards.
};

/// Folds per-shard samples into the fleet view.
FleetGcStats aggregateShards(const std::vector<ShardGcSample> &Samples);

/// Human-readable multi-line summary (one line per shard + fleet line),
/// for load-driver and tool output.
std::string formatFleetSummary(const std::vector<ShardGcSample> &Samples,
                               const FleetGcStats &Fleet);

} // namespace gengc

#endif // GENGC_TELEMETRY_AGGREGATE_H

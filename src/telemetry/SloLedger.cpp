//===- telemetry/SloLedger.cpp - Fleet SLO targets and verdict -----------===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "telemetry/SloLedger.h"

#include <cstdio>

namespace gengc {

SloVerdict evaluateSlo(const SloTargets &Targets,
                       const LatencyRecorder &Pauses,
                       const LatencyRecorder &Ops,
                       const std::vector<PauseClip> &Clips,
                       uint64_t MutatorNanos) {
  SloVerdict V;
  V.PauseP99Nanos = Pauses.p99();
  V.PauseMaxNanos = Pauses.maxNanos();
  V.OpP99Nanos = Ops.p99();
  V.Mmu = minMutatorUtilization(Clips, Targets.MmuWindowNanos,
                                MutatorNanos);

  if (Targets.PauseP99Nanos != 0 &&
      V.PauseP99Nanos > Targets.PauseP99Nanos) {
    V.Pass = false;
    V.PauseViolations += Pauses.countAbove(Targets.PauseP99Nanos);
  }
  if (Targets.PauseMaxNanos != 0 &&
      V.PauseMaxNanos > Targets.PauseMaxNanos) {
    V.Pass = false;
    const uint64_t Over = Pauses.countAbove(Targets.PauseMaxNanos);
    if (Over > V.PauseViolations)
      V.PauseViolations = Over;
  }
  if (Targets.OpP99Nanos != 0 && V.OpP99Nanos > Targets.OpP99Nanos) {
    V.Pass = false;
    V.OpViolations = Ops.countAbove(Targets.OpP99Nanos);
  }
  if (Targets.MmuFloor > 0.0 && V.Mmu < Targets.MmuFloor) {
    V.Pass = false;
    V.MmuViolations = 1;
  }
  return V;
}

std::string formatSloVerdict(const SloTargets &Targets,
                             const SloVerdict &V) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "SLO %s: pause p99 %.3f ms (target %.3f) max %.3f ms "
                "(target %.3f) | op p99 %.3f ms (target %.3f) | "
                "MMU(%.0f ms) %.3f (floor %.3f)",
                V.Pass ? "PASS" : "FAIL",
                static_cast<double>(V.PauseP99Nanos) / 1e6,
                static_cast<double>(Targets.PauseP99Nanos) / 1e6,
                static_cast<double>(V.PauseMaxNanos) / 1e6,
                static_cast<double>(Targets.PauseMaxNanos) / 1e6,
                static_cast<double>(V.OpP99Nanos) / 1e6,
                static_cast<double>(Targets.OpP99Nanos) / 1e6,
                static_cast<double>(Targets.MmuWindowNanos) / 1e6, V.Mmu,
                Targets.MmuFloor);
  return Buf;
}

} // namespace gengc

//===- telemetry/FleetTrace.h - Merged cross-shard trace ------*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One Chrome trace for the whole fleet. Each shard's heap keeps its
/// own single-writer event ring stamped on its own epoch; this
/// exporter rebases every ring onto a common fleet clock (the
/// per-shard epoch offset is measured once, on the shard thread, at
/// heap construction), lays each shard out on its own tid row, adds an
/// executor row for finalization spans, and draws flow events
/// (ph "s"/"f") between the send/receive/submit instants that share a
/// span id — so a cross-shard message or a guardian-drained ticket
/// reads as one causal arrow in chrome://tracing.
///
/// Clock model: all timestamps become nanos since the fleet epoch
/// (captured before any shard thread starts, so offsets are
/// non-negative). steady_clock is shared by all threads of a process,
/// which is what makes the single merged timeline honest.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_TELEMETRY_FLEETTRACE_H
#define GENGC_TELEMETRY_FLEETTRACE_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "gc/telemetry/EventRing.h"

namespace gengc {

/// One shard's contribution: its ring snapshot plus the offset from
/// the fleet epoch to the shard heap's epoch.
struct ShardTraceSample {
  uint32_t ShardId = 0;
  int64_t EpochOffsetNanos = 0;
  std::vector<GcEvent> Events;
};

/// One executed finalization action, on the fleet clock. Recorded by
/// the FinalizationExecutor when tracing is enabled.
struct FinalizeSpan {
  uint64_t TraceId = 0;
  uint64_t SpanId = 0;
  uint32_t Queue = 0;
  uint32_t Attempt = 1;
  uint64_t SubmitNanos = 0; ///< When the ticket entered the executor.
  uint64_t StartNanos = 0;  ///< When the action began running.
  uint64_t EndNanos = 0;    ///< When the action returned.
  bool Ok = true;
};

/// Writes the merged fleet trace: shard rows (tid = ShardId + 1),
/// an executor row, and flow events linking msg-send -> msg-recv and
/// ticket-submit -> finalize spans by span id.
void writeFleetTrace(std::ostream &OS,
                     const std::vector<ShardTraceSample> &Shards,
                     const std::vector<FinalizeSpan> &Finalizes);

/// Writes the fleet trace to \p Path; returns false (with a message on
/// stderr) if the file cannot be opened.
bool dumpFleetTraceToFile(const std::vector<ShardTraceSample> &Shards,
                          const std::vector<FinalizeSpan> &Finalizes,
                          const std::string &Path);

} // namespace gengc

#endif // GENGC_TELEMETRY_FLEETTRACE_H

//===- telemetry/Aggregate.cpp - Cross-shard GC aggregation --------------===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "telemetry/Aggregate.h"

#include <cstdio>

namespace gengc {

FleetGcStats aggregateShards(const std::vector<ShardGcSample> &Samples) {
  FleetGcStats Fleet;
  Fleet.Shards = Samples.size();
  for (const ShardGcSample &S : Samples) {
    Fleet.Combined.merge(S.Totals);
    Fleet.TotalBytesAllocated += S.BytesAllocated;
    Fleet.Pauses.merge(S.Pauses);
    Fleet.SloPauseViolations += S.SloPauseViolations;
    const std::vector<MmuPoint> Curve =
        standardMmuCurve(S.Clips, S.MutatorNanos);
    if (Fleet.Mmu.empty()) {
      Fleet.Mmu = Curve;
    } else {
      for (size_t I = 0; I != Fleet.Mmu.size(); ++I)
        if (Curve[I].Utilization < Fleet.Mmu[I].Utilization)
          Fleet.Mmu[I].Utilization = Curve[I].Utilization;
    }
  }
  Fleet.PauseP50Nanos = Fleet.Pauses.p50();
  Fleet.PauseP99Nanos = Fleet.Pauses.p99();
  Fleet.PauseP999Nanos = Fleet.Pauses.p999();
  Fleet.PauseMaxNanos = Fleet.Pauses.maxNanos();
  return Fleet;
}

std::string formatFleetSummary(const std::vector<ShardGcSample> &Samples,
                               const FleetGcStats &Fleet) {
  std::string Out;
  char Line[320];
  for (const ShardGcSample &S : Samples) {
    std::snprintf(Line, sizeof(Line),
                  "shard %2u: %6llu gcs  %9llu KB alloc  pause p50 %8llu ns  "
                  "p99 %8llu ns  p999 %8llu ns  max %8llu ns\n",
                  S.ShardId,
                  static_cast<unsigned long long>(S.Totals.Collections),
                  static_cast<unsigned long long>(S.BytesAllocated / 1024),
                  static_cast<unsigned long long>(S.Pauses.p50()),
                  static_cast<unsigned long long>(S.Pauses.p99()),
                  static_cast<unsigned long long>(S.Pauses.p999()),
                  static_cast<unsigned long long>(S.Pauses.maxNanos()));
    Out += Line;
  }
  std::snprintf(Line, sizeof(Line),
                "fleet (%zu shards): %llu gcs  %llu KB alloc  pause p50 %llu "
                "ns  p99 %llu ns  p999 %llu ns  max %llu ns\n",
                Fleet.Shards,
                static_cast<unsigned long long>(Fleet.Combined.Collections),
                static_cast<unsigned long long>(Fleet.TotalBytesAllocated /
                                                1024),
                static_cast<unsigned long long>(Fleet.PauseP50Nanos),
                static_cast<unsigned long long>(Fleet.PauseP99Nanos),
                static_cast<unsigned long long>(Fleet.PauseP999Nanos),
                static_cast<unsigned long long>(Fleet.PauseMaxNanos));
  Out += Line;
  if (!Fleet.Mmu.empty()) {
    Out += "fleet MMU (worst shard):";
    for (const MmuPoint &P : Fleet.Mmu) {
      std::snprintf(Line, sizeof(Line), "  %.0fms %.3f",
                    static_cast<double>(P.WindowNanos) / 1e6,
                    P.Utilization);
      Out += Line;
    }
    Out += "\n";
  }
  return Out;
}

} // namespace gengc

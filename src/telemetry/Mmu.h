//===- telemetry/Mmu.h - Minimum mutator utilization ----------*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimum mutator utilization (MMU) over the per-heap pause-clip
/// record. MMU(w) is the worst-case fraction of any wall-clock window
/// of length w that the mutator got to run: 1.0 means no window of
/// that length ever saw a pause, 0.0 means some window was entirely
/// consumed by collection. It is the standard real-time currency for
/// GC latency (Cheng & Blelloch): a pause-time histogram says how long
/// pauses were, MMU(w) says whether back-to-back pauses ever starved a
/// w-sized deadline.
///
/// The exact minimum over all window placements is attained at a
/// window whose start coincides with a pause start or whose end
/// coincides with a pause end, so the computation enumerates only
/// those candidates against a prefix-sum of pause time — O(n log n)
/// in the number of clips, which the bounded clip ring keeps small.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_TELEMETRY_MMU_H
#define GENGC_TELEMETRY_MMU_H

#include <cstdint>
#include <vector>

#include "gc/telemetry/Telemetry.h"

namespace gengc {

/// Worst-case mutator utilization over any window of \p WindowNanos
/// within [0, TotalNanos]. \p Clips must be time-ordered (as returned
/// by GcTelemetry::pauseClips()). Returns 1.0 for an empty record and
/// the global utilization when the window exceeds the total span.
double minMutatorUtilization(const std::vector<PauseClip> &Clips,
                             uint64_t WindowNanos, uint64_t TotalNanos);

/// One point of an MMU curve.
struct MmuPoint {
  uint64_t WindowNanos = 0;
  double Utilization = 1.0;
};

/// The standard three-window curve (1 ms / 10 ms / 100 ms) every
/// emitter in-tree reports.
std::vector<MmuPoint> standardMmuCurve(const std::vector<PauseClip> &Clips,
                                       uint64_t TotalNanos);

} // namespace gengc

#endif // GENGC_TELEMETRY_MMU_H

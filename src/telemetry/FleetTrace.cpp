//===- telemetry/FleetTrace.cpp - Merged cross-shard trace ---------------===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "telemetry/FleetTrace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "gc/telemetry/TraceExport.h"

using namespace gengc;

namespace {

/// tid of a shard's row; tid ExecutorTid is the executor's row. Pid is
/// always 1 — the fleet is one process.
constexpr uint32_t FleetPid = 1;
constexpr uint32_t ExecutorTid = 999;
uint32_t shardTid(uint32_t ShardId) { return ShardId + 1; }

double micros(uint64_t Nanos) { return static_cast<double>(Nanos) / 1e3; }

void emitComma(std::ostream &OS, bool &First) {
  if (!First)
    OS << ",";
  First = false;
  OS << "\n";
}

/// Chrome metadata record naming a tid row.
void emitThreadName(std::ostream &OS, bool &First, uint32_t Tid,
                    const char *Name) {
  emitComma(OS, First);
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%" PRIu32
                ",\"tid\":%" PRIu32 ",\"args\":{\"name\":\"%s\"}}",
                FleetPid, Tid, Name);
  OS << Buf;
}

/// One flow record. Phase "s" starts a flow at (ts, tid); phase "f"
/// with bp "e" binds its arrival to the enclosing slice/instant.
void emitFlow(std::ostream &OS, bool &First, const char *Ph, uint64_t Id,
              uint32_t Tid, uint64_t TimeNanos) {
  emitComma(OS, First);
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "{\"name\":\"causal\",\"cat\":\"flow\",\"ph\":\"%s\"%s,"
                "\"id\":\"0x%" PRIx64 "\",\"ts\":%.3f,\"pid\":%" PRIu32
                ",\"tid\":%" PRIu32 "}",
                Ph, Ph[0] == 'f' ? ",\"bp\":\"e\"" : "", Id,
                micros(TimeNanos), FleetPid, Tid);
  OS << Buf;
}

uint64_t rebased(const GcEvent &E, int64_t OffsetNanos) {
  return static_cast<uint64_t>(static_cast<int64_t>(E.TimeNanos) +
                               OffsetNanos);
}

} // namespace

void gengc::writeFleetTrace(std::ostream &OS,
                            const std::vector<ShardTraceSample> &Shards,
                            const std::vector<FinalizeSpan> &Finalizes) {
  size_t Retained = 0;
  for (const ShardTraceSample &S : Shards)
    Retained += S.Events.size();
  OS << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"producer\":"
     << "\"gengc-fleet\",\"shards\":" << Shards.size()
     << ",\"events_retained\":" << Retained
     << ",\"finalize_spans\":" << Finalizes.size() << "},\"traceEvents\":[";

  bool First = true;
  for (const ShardTraceSample &S : Shards) {
    char Name[32];
    std::snprintf(Name, sizeof(Name), "shard-%" PRIu32, S.ShardId);
    emitThreadName(OS, First, shardTid(S.ShardId), Name);
  }
  if (!Finalizes.empty())
    emitThreadName(OS, First, ExecutorTid, "finalization-executor");

  for (const ShardTraceSample &S : Shards) {
    const uint32_t Tid = shardTid(S.ShardId);
    for (const GcEvent &E : S.Events) {
      emitComma(OS, First);
      emitChromeTraceEvent(OS, E, FleetPid, Tid, S.EpochOffsetNanos);
      // Causal arrows: a send/submit instant starts a flow keyed by
      // the span id; the matching receive (another shard's ring) or
      // finalize span (the executor's record) finishes it.
      if (E.Type == GcEventType::MessageSend ||
          E.Type == GcEventType::TicketSubmit)
        emitFlow(OS, First, "s", E.B, Tid, rebased(E, S.EpochOffsetNanos));
      else if (E.Type == GcEventType::MessageReceive)
        emitFlow(OS, First, "f", E.B, Tid, rebased(E, S.EpochOffsetNanos));
    }
  }

  for (const FinalizeSpan &F : Finalizes) {
    emitComma(OS, First);
    char Buf[256];
    const uint64_t Dur =
        F.EndNanos > F.StartNanos ? F.EndNanos - F.StartNanos : 0;
    std::snprintf(Buf, sizeof(Buf),
                  "{\"name\":\"finalize\",\"cat\":\"executor\","
                  "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%" PRIu32
                  ",\"tid\":%" PRIu32 ",\"args\":{\"queue\":%" PRIu32
                  ",\"attempt\":%" PRIu32 ",\"trace\":%" PRIu64
                  ",\"span\":%" PRIu64 ",\"wait_us\":%.3f,\"ok\":%s}}",
                  micros(F.StartNanos), micros(Dur), FleetPid, ExecutorTid,
                  F.Queue, F.Attempt, F.TraceId, F.SpanId,
                  micros(F.StartNanos - F.SubmitNanos),
                  F.Ok ? "true" : "false");
    OS << Buf;
    if (F.SpanId != 0)
      emitFlow(OS, First, "f", F.SpanId, ExecutorTid, F.StartNanos);
  }

  OS << "\n]}\n";
}

bool gengc::dumpFleetTraceToFile(const std::vector<ShardTraceSample> &Shards,
                                 const std::vector<FinalizeSpan> &Finalizes,
                                 const std::string &Path) {
  std::ofstream OS(Path);
  if (!OS) {
    std::fprintf(stderr, "[fleet] cannot open trace output file: %s\n",
                 Path.c_str());
    return false;
  }
  writeFleetTrace(OS, Shards, Finalizes);
  return OS.good();
}

//===- telemetry/SloLedger.h - Fleet SLO targets and verdict --*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SLO ledger: configurable pause/latency/utilization targets
/// evaluated against the fleet's merged latency recorders and MMU
/// curve, producing a machine-readable verdict. loadgen emits the
/// verdict into its bench JSON (slo_pass plus one violation counter
/// per target), so a CI gate is one key lookup instead of re-deriving
/// percentiles from raw output.
///
/// A target of 0 disables that clause; an all-disabled ledger passes
/// vacuously. Violation counters count *samples* over the target (how
/// many pauses/ops broke it), not a boolean, so a regression's blast
/// radius is visible in the same number that detects it.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_TELEMETRY_SLOLEDGER_H
#define GENGC_TELEMETRY_SLOLEDGER_H

#include <cstdint>
#include <string>

#include "telemetry/LatencyRecorder.h"
#include "telemetry/Mmu.h"

namespace gengc {

/// The targets. All-zero (the default) disables every clause.
struct SloTargets {
  /// GC pause targets, against the fleet-merged pause recorder.
  uint64_t PauseP99Nanos = 0;
  uint64_t PauseMaxNanos = 0;
  /// Mutator operation latency target, against the merged per-op
  /// recorder.
  uint64_t OpP99Nanos = 0;
  /// Utilization floor: MMU(MmuWindowNanos) must be >= MmuFloor.
  uint64_t MmuWindowNanos = 10'000'000;
  double MmuFloor = 0.0;
};

/// What was measured and which clauses held.
struct SloVerdict {
  bool Pass = true;

  uint64_t PauseP99Nanos = 0;      ///< Measured.
  uint64_t PauseMaxNanos = 0;      ///< Measured.
  uint64_t OpP99Nanos = 0;         ///< Measured.
  double Mmu = 1.0;                ///< Measured at MmuWindowNanos.

  /// Individual samples over the corresponding target (0 when the
  /// clause is disabled or held).
  uint64_t PauseViolations = 0;
  uint64_t OpViolations = 0;
  /// 1 when the MMU floor clause failed.
  uint64_t MmuViolations = 0;
};

/// Evaluates \p Targets against the merged recorders and pause clips.
/// \p MutatorNanos is the wall-clock span MMU is computed over.
SloVerdict evaluateSlo(const SloTargets &Targets,
                       const LatencyRecorder &Pauses,
                       const LatencyRecorder &Ops,
                       const std::vector<PauseClip> &Clips,
                       uint64_t MutatorNanos);

/// One-line human summary ("SLO PASS ..." / "SLO FAIL ...").
std::string formatSloVerdict(const SloTargets &Targets,
                             const SloVerdict &V);

} // namespace gengc

#endif // GENGC_TELEMETRY_SLOLEDGER_H

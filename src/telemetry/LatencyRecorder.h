//===- telemetry/LatencyRecorder.h - Log-linear HDR histogram -*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free, mergeable log-linear histogram of nanosecond latencies —
/// the fleet tier's one latency currency. Every producer (loadgen ops,
/// GC pauses in bench, finalization tickets in the executor) records
/// into one of these; consumers merge recorders bucket-wise and read
/// percentiles, so p999 over a million samples costs a fixed 15 KiB
/// per recorder instead of an unbounded sorted vector.
///
/// Bucketing is HdrHistogram-style log-linear: values below 2^6 land in
/// exact unit buckets; above that, each power-of-two range is split into
/// 32 linear sub-buckets, so the relative quantization error is bounded
/// by 1/32 (~3.1%) at any magnitude, and the absolute error of any
/// reported percentile is at most one bucket width (tested).
///
/// Concurrency: record() is wait-free — one relaxed fetch_add on the
/// bucket counter plus relaxed updates of count/sum and a CAS loop on
/// max. Counters are plain commutative adds, so totals are deterministic
/// under any thread interleaving (the TSan test relies on this). Reads
/// (percentile/merge/copy) take relaxed snapshots; callers that need a
/// consistent view read after the writers quiesce, which is how every
/// use in-tree works (bench after the run, fleet stats after shutdown).
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_TELEMETRY_LATENCYRECORDER_H
#define GENGC_TELEMETRY_LATENCYRECORDER_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gengc {

class LatencyRecorder {
public:
  /// Linear sub-buckets per power-of-two range (2^SubBucketBits).
  static constexpr unsigned SubBucketBits = 5;
  static constexpr unsigned SubBuckets = 1u << SubBucketBits;
  /// Exponents 2^SubBucketBits .. 2^63 each contribute SubBuckets
  /// buckets; the first two rows (values 0..2*SubBuckets-1) are exact.
  static constexpr unsigned NumBuckets =
      (64 - SubBucketBits + 1) * SubBuckets;

  LatencyRecorder() = default;

  LatencyRecorder(const LatencyRecorder &O) { copyFrom(O); }
  LatencyRecorder &operator=(const LatencyRecorder &O) {
    if (this != &O)
      copyFrom(O);
    return *this;
  }

  /// Maps a value to its bucket index. Exact (width-1 buckets) below
  /// 2 * SubBuckets; log-linear above.
  static constexpr unsigned bucketIndex(uint64_t Nanos) {
    if (Nanos < 2 * SubBuckets)
      return static_cast<unsigned>(Nanos);
    const unsigned Exp = 63 - static_cast<unsigned>(__builtin_clzll(Nanos));
    // (Nanos >> (Exp - SubBucketBits)) is in [SubBuckets, 2*SubBuckets).
    const unsigned Sub = static_cast<unsigned>(
        (Nanos >> (Exp - SubBucketBits)) - SubBuckets);
    return (Exp - SubBucketBits + 1) * SubBuckets + Sub;
  }

  /// Smallest value mapping to bucket \p Index.
  static constexpr uint64_t bucketLowerBound(unsigned Index) {
    const unsigned Row = Index / SubBuckets;
    const unsigned Sub = Index % SubBuckets;
    if (Row <= 1)
      return Index;
    return static_cast<uint64_t>(SubBuckets + Sub) << (Row - 1);
  }

  /// Width of bucket \p Index (1 in the exact region).
  static constexpr uint64_t bucketWidth(unsigned Index) {
    const unsigned Row = Index / SubBuckets;
    return Row <= 1 ? 1 : (1ull << (Row - 1));
  }

  /// Records one sample. Wait-free; safe from any number of threads.
  void record(uint64_t Nanos) {
    Counts[bucketIndex(Nanos)].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(Nanos, std::memory_order_relaxed);
    uint64_t Seen = Max.load(std::memory_order_relaxed);
    while (Nanos > Seen &&
           !Max.compare_exchange_weak(Seen, Nanos,
                                      std::memory_order_relaxed))
      ;
  }

  /// Folds \p O into this recorder (bucket-wise add, max of maxima).
  /// Merging is associative and commutative (tested), so per-shard
  /// recorders can be folded in any order.
  void merge(const LatencyRecorder &O) {
    for (unsigned I = 0; I != NumBuckets; ++I) {
      const uint64_t C = O.Counts[I].load(std::memory_order_relaxed);
      if (C)
        Counts[I].fetch_add(C, std::memory_order_relaxed);
    }
    Count.fetch_add(O.Count.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    Sum.fetch_add(O.Sum.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    uint64_t OMax = O.Max.load(std::memory_order_relaxed);
    uint64_t Seen = Max.load(std::memory_order_relaxed);
    while (OMax > Seen &&
           !Max.compare_exchange_weak(Seen, OMax,
                                      std::memory_order_relaxed))
      ;
  }

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t totalNanos() const {
    return Sum.load(std::memory_order_relaxed);
  }
  uint64_t maxNanos() const {
    return Max.load(std::memory_order_relaxed);
  }
  uint64_t meanNanos() const {
    const uint64_t N = count();
    return N ? totalNanos() / N : 0;
  }

  /// Value at percentile \p P in [0, 100] (nearest-rank over buckets).
  /// Reports the upper bound of the bucket holding the rank, clamped to
  /// the exact recorded max — so the answer is never below the true
  /// value and overshoots by at most one bucket width.
  uint64_t percentileNanos(double P) const {
    const uint64_t N = count();
    if (N == 0)
      return 0;
    uint64_t Rank = static_cast<uint64_t>(P / 100.0 *
                                          static_cast<double>(N) + 0.5);
    if (Rank < 1)
      Rank = 1;
    if (Rank > N)
      Rank = N;
    uint64_t Seen = 0;
    for (unsigned I = 0; I != NumBuckets; ++I) {
      Seen += Counts[I].load(std::memory_order_relaxed);
      if (Seen >= Rank) {
        const uint64_t Upper = bucketLowerBound(I) + bucketWidth(I) - 1;
        const uint64_t M = maxNanos();
        return Upper < M ? Upper : M;
      }
    }
    return maxNanos();
  }

  /// Samples recorded strictly above \p Nanos, to bucket resolution:
  /// counts every bucket whose whole range lies above the threshold,
  /// so the answer may undercount by at most one bucket's population.
  /// (The SLO ledger uses this for violation counters.)
  uint64_t countAbove(uint64_t Nanos) const {
    uint64_t Above = 0;
    for (unsigned I = NumBuckets; I-- > 0;) {
      if (bucketLowerBound(I) <= Nanos)
        break;
      Above += Counts[I].load(std::memory_order_relaxed);
    }
    return Above;
  }

  uint64_t p50() const { return percentileNanos(50.0); }
  uint64_t p99() const { return percentileNanos(99.0); }
  uint64_t p999() const { return percentileNanos(99.9); }

  void reset() {
    for (unsigned I = 0; I != NumBuckets; ++I)
      Counts[I].store(0, std::memory_order_relaxed);
    Count.store(0, std::memory_order_relaxed);
    Sum.store(0, std::memory_order_relaxed);
    Max.store(0, std::memory_order_relaxed);
  }

private:
  void copyFrom(const LatencyRecorder &O) {
    for (unsigned I = 0; I != NumBuckets; ++I)
      Counts[I].store(O.Counts[I].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    Count.store(O.Count.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    Sum.store(O.Sum.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
    Max.store(O.Max.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  }

  std::array<std::atomic<uint64_t>, NumBuckets> Counts = {};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Max{0};
};

/// The canonical bench-JSON projection of a recorder: the (key, value)
/// counter pairs every emitter writes and scripts/bench.sh re-derives.
/// Keys are `<prefix>_{p50,p99,p999,max}_ns` plus `<prefix>_count`.
inline std::vector<std::pair<std::string, uint64_t>>
latencyCounters(const std::string &Prefix, const LatencyRecorder &R) {
  return {{Prefix + "_p50_ns", R.p50()},
          {Prefix + "_p99_ns", R.p99()},
          {Prefix + "_p999_ns", R.p999()},
          {Prefix + "_max_ns", R.maxNanos()},
          {Prefix + "_count", R.count()}};
}

} // namespace gengc

#endif // GENGC_TELEMETRY_LATENCYRECORDER_H

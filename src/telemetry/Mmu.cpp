//===- telemetry/Mmu.cpp - Minimum mutator utilization -------------------===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "telemetry/Mmu.h"

#include <algorithm>

namespace gengc {

namespace {

/// Pause time overlapping [T0, T1), against clip arrays sorted by
/// start time.
uint64_t pauseInWindow(const std::vector<uint64_t> &Starts,
                       const std::vector<uint64_t> &Ends, uint64_t T0,
                       uint64_t T1) {
  if (T1 <= T0 || Starts.empty())
    return 0;
  // Clips are non-overlapping (pauses are stop-the-world on one
  // thread), so the overlap is full durations of clips strictly inside
  // the window plus partial overlaps of at most one clip at each edge.
  uint64_t Total = 0;
  // First clip whose end is past T0, last clip whose start is before T1.
  const size_t Lo = static_cast<size_t>(
      std::upper_bound(Ends.begin(), Ends.end(), T0) - Ends.begin());
  const size_t Hi = static_cast<size_t>(
      std::lower_bound(Starts.begin(), Starts.end(), T1) - Starts.begin());
  for (size_t I = Lo; I < Hi; ++I) {
    const uint64_t S = std::max(Starts[I], T0);
    const uint64_t E = std::min(Ends[I], T1);
    if (E > S)
      Total += E - S;
  }
  return Total;
}

} // namespace

double minMutatorUtilization(const std::vector<PauseClip> &Clips,
                             uint64_t WindowNanos, uint64_t TotalNanos) {
  if (WindowNanos == 0 || TotalNanos == 0)
    return 1.0;
  if (Clips.empty())
    return 1.0;

  std::vector<uint64_t> Starts, Ends;
  Starts.reserve(Clips.size());
  Ends.reserve(Clips.size());
  uint64_t PauseSum = 0;
  for (const PauseClip &C : Clips) {
    Starts.push_back(C.StartNanos);
    Ends.push_back(C.StartNanos + C.DurNanos);
    PauseSum += C.DurNanos;
  }

  if (WindowNanos >= TotalNanos) {
    const uint64_t P = std::min(PauseSum, TotalNanos);
    return static_cast<double>(TotalNanos - P) /
           static_cast<double>(TotalNanos);
  }

  // The minimizing window is one that begins at a pause start or ends
  // at a pause end (sliding a window off such an alignment can only
  // shed pause time). Evaluate both candidate families, clamped to the
  // observed span.
  uint64_t WorstPause = 0;
  auto Consider = [&](uint64_t T0) {
    if (T0 + WindowNanos > TotalNanos)
      T0 = TotalNanos - WindowNanos;
    const uint64_t P = pauseInWindow(Starts, Ends, T0, T0 + WindowNanos);
    if (P > WorstPause)
      WorstPause = P;
  };
  for (size_t I = 0; I != Clips.size(); ++I) {
    Consider(Starts[I]);
    Consider(Ends[I] >= WindowNanos ? Ends[I] - WindowNanos : 0);
  }

  if (WorstPause >= WindowNanos)
    return 0.0;
  return static_cast<double>(WindowNanos - WorstPause) /
         static_cast<double>(WindowNanos);
}

std::vector<MmuPoint> standardMmuCurve(const std::vector<PauseClip> &Clips,
                                       uint64_t TotalNanos) {
  static constexpr uint64_t Windows[] = {1'000'000, 10'000'000,
                                         100'000'000};
  std::vector<MmuPoint> Curve;
  for (uint64_t W : Windows)
    Curve.push_back({W, minMutatorUtilization(Clips, W, TotalNanos)});
  return Curve;
}

} // namespace gengc

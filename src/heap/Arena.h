//===- heap/Arena.h - Segmented memory arena ------------------*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The segmented memory system of Section 4: "the heap is structured as a
/// set of segments (each currently 4K bytes in size). Each segment belongs
/// to a specific space and generation; the space and generation to which
/// each segment belongs is maintained in a segment information table with
/// one entry per segment."
///
/// The arena reserves one large virtual region and hands out runs of
/// contiguous segments. An object never spans runs; objects larger than a
/// segment get a dedicated multi-segment run. The segment information
/// table gives O(1) address-to-(space, generation) lookup, which is what
/// makes weak pairs (a distinct weak-pair space) and the generational
/// forwarding test cheap.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_HEAP_ARENA_H
#define GENGC_HEAP_ARENA_H

#include <cstdint>
#include <mutex>
#include <vector>

#include "support/Assert.h"

namespace gengc {

/// Segment geometry. The paper's segments are 4 KiB.
constexpr size_t SegmentBytes = 4096;
constexpr size_t SegmentWords = SegmentBytes / sizeof(uintptr_t);

/// The spaces objects are segregated into. The paper calls out the
/// ability "to segregate objects based on their characteristics, such as
/// whether they are mutable or whether they contain pointers"; weak pairs
/// "are always placed in a distinct weak-pair space".
enum class SpaceKind : uint8_t {
  Pair = 0,     ///< Ordinary cons cells (no headers).
  WeakPair = 1, ///< Weak cons cells: car is a weak pointer.
  Typed = 2,    ///< Typed objects whose payload contains tagged Values.
  Data = 3,     ///< Typed objects with pointerless payloads.
};
constexpr unsigned NumSpaces = 4;

/// Canonical display name of a space. Every consumer that labels a
/// (generation, space) coordinate — the census, the trace exporters,
/// tools — must use this one table so the labels line up across
/// outputs.
constexpr const char *spaceKindName(SpaceKind Space) {
  switch (Space) {
  case SpaceKind::Pair:
    return "pair";
  case SpaceKind::WeakPair:
    return "weak-pair";
  case SpaceKind::Typed:
    return "typed";
  case SpaceKind::Data:
    return "data";
  }
  return "unknown";
}

/// Generation sentinel carried by shared-immutable segments. Deliberately
/// above any collectible generation: the write barrier's "value older than
/// container" test then skips shared values for free, and every
/// entry-list/remembered-set index that might see it clamps explicitly.
constexpr uint8_t SharedGeneration = 0xFF;

/// Generation sentinel carried by in-flight donation segments: copied out
/// by a sender (or detached wholesale from a donation scope) but not yet
/// adopted by any heap. Distinct from every collectible generation so that
/// "in flight" can be told apart from "adopted" even on single-generation
/// heaps, where the oldest generation is also 0. Adoption retags the
/// segments to the receiver's oldest generation.
constexpr uint8_t InFlightGeneration = 0xFE;

/// Per-segment bookkeeping, one entry per segment in the arena.
struct SegmentInfo {
  static constexpr uint8_t FlagInUse = 1 << 0;
  /// Set on every segment of the generations being collected, for the
  /// duration of one collection. forwarded?(x) is "x is not in a
  /// from-space segment, or x carries a forwarding marker".
  static constexpr uint8_t FlagFromSpace = 1 << 1;
  /// Shared immutable space: frozen, barrier-exempt, never collected,
  /// referenceable from every shard. Always paired with Generation ==
  /// SharedGeneration.
  static constexpr uint8_t FlagShared = 1 << 2;
  /// Donation segment: allocated in the process exchange arena by a
  /// sending shard's copy-out (Generation == InFlightGeneration while in
  /// flight), adopted by the receiver's heap as tenured space (retagged to
  /// its oldest generation). The flag survives adoption so ownership
  /// accounting can audit the exchange arena.
  static constexpr uint8_t FlagDonated = 1 << 3;

  SpaceKind Space = SpaceKind::Pair;
  uint8_t Generation = 0;
  /// Copies survived within the current generation (tenure age). Only
  /// meaningful when the heap's TenureCopies policy exceeds 1.
  uint8_t Age = 0;
  /// Request-scope ownership: 0 for the ordinary generational ladder,
  /// d > 0 for segments belonging to the d-th open ScopedGeneration
  /// (1 = outermost). Scope segments always carry Generation 0 and
  /// Age 0 — a scope is an ephemeral nursery, not a tenure rung.
  uint8_t ScopeDepth = 0;
  uint8_t Flags = 0;

  bool inUse() const { return Flags & FlagInUse; }
  bool isFromSpace() const { return Flags & FlagFromSpace; }
  bool isShared() const { return Flags & FlagShared; }
  bool isDonated() const { return Flags & FlagDonated; }
};

/// Reserves a contiguous virtual region and manages it as runs of
/// segments with a first-fit free list.
class Arena {
public:
  /// Reserves \p TotalBytes of virtual address space (committed lazily by
  /// the OS as segments are touched).
  explicit Arena(size_t TotalBytes);
  ~Arena();

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Observer invoked on every run allocation and free. Installed by the
  /// heap's telemetry layer only when event tracing is enabled, so the
  /// default path pays one null test per run operation (runs, not
  /// objects: a run covers thousands of allocations).
  using SegmentObserver = void (*)(void *Ctx, bool IsAlloc, uint32_t First,
                                   uint32_t Count, SpaceKind Space,
                                   uint8_t Generation);
  void setSegmentObserver(SegmentObserver Fn, void *Ctx) {
    Observer = Fn;
    ObserverCtx = Ctx;
  }

  /// Allocates a run of \p NumSegments contiguous segments, tagging each
  /// with \p Space and \p Generation. Returns the index of the first
  /// segment. Aborts if the arena is exhausted (the reservation is the
  /// heap-size limit). Thread-safe: GC workers of a parallel scavenge
  /// grab fresh to-space runs concurrently, so the free list, the
  /// affected SegmentInfo entries, and the observer callback are all
  /// updated under one internal lock (runs, not objects — the
  /// allocation fast path never comes here).
  /// \p ExtraFlags is OR'd into every segment's flags beyond FlagInUse —
  /// FlagShared for shared-immutable runs, FlagDonated for donation runs.
  uint32_t allocateRun(uint32_t NumSegments, SpaceKind Space,
                       uint8_t Generation, uint8_t Age = 0,
                       uint8_t ScopeDepth = 0, uint8_t ExtraFlags = 0);

  /// Returns a run to the free list and clears its segment entries.
  /// Thread-safe, like allocateRun.
  void freeRun(uint32_t FirstSegment, uint32_t NumSegments);

  /// True if \p Address lies inside the arena reservation.
  bool containsAddress(uintptr_t Address) const {
    return Address >= Base && Address < Base + TotalSegments * SegmentBytes;
  }

  /// Segment index containing \p Address (which must be in the arena).
  uint32_t segmentIndexOf(uintptr_t Address) const {
    GENGC_ASSERT(containsAddress(Address), "address outside arena");
    return static_cast<uint32_t>((Address - Base) / SegmentBytes);
  }

  SegmentInfo &infoAt(uint32_t SegmentIndex) {
    GENGC_ASSERT(SegmentIndex < TotalSegments, "segment index out of range");
    return Infos[SegmentIndex];
  }
  const SegmentInfo &infoAt(uint32_t SegmentIndex) const {
    GENGC_ASSERT(SegmentIndex < TotalSegments, "segment index out of range");
    return Infos[SegmentIndex];
  }

  /// Segment info for the segment containing \p Address.
  SegmentInfo &infoFor(uintptr_t Address) {
    return Infos[segmentIndexOf(Address)];
  }
  const SegmentInfo &infoFor(uintptr_t Address) const {
    return Infos[segmentIndexOf(Address)];
  }

  /// First word of segment \p SegmentIndex.
  uintptr_t *segmentBase(uint32_t SegmentIndex) const {
    return reinterpret_cast<uintptr_t *>(Base +
                                         static_cast<uintptr_t>(SegmentIndex) *
                                             SegmentBytes);
  }

  size_t totalSegments() const { return TotalSegments; }
  size_t segmentsInUse() const { return InUseCount; }

private:
  struct FreeRun {
    uint32_t First;
    uint32_t Count;
  };

  /// Serializes allocateRun/freeRun (free list + SegmentInfo tagging +
  /// observer). Never contended outside a parallel scavenge.
  std::mutex RunLock;
  uintptr_t Base = 0;
  size_t TotalSegments = 0;
  size_t InUseCount = 0;
  SegmentObserver Observer = nullptr;
  void *ObserverCtx = nullptr;
  std::vector<SegmentInfo> Infos;
  /// Sorted by First; adjacent runs are merged on free.
  std::vector<FreeRun> FreeRuns;
};

} // namespace gengc

#endif // GENGC_HEAP_ARENA_H

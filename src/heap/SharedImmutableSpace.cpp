//===- heap/SharedImmutableSpace.cpp - Process-wide exchange space --------===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
//
// The heap-layer half of the exchange domain: arena ownership, shared
// publishing primitives, and DonatedGraph lifetime. freeze() — which
// must classify values against a source Heap — lives in gc/Donation.cpp
// with the rest of the donation machinery.
//
//===----------------------------------------------------------------------===//

#include "heap/SharedImmutableSpace.h"

#include <cstring>

#include "object/Layout.h"

using namespace gengc;

void DonatedGraph::release() {
  if (Domain && !LeakOnDrop)
    for (unsigned S = 0; S != NumSpaces; ++S)
      for (const SegmentRun &R : Runs[S])
        Domain->Exchange.freeRun(R.FirstSegment, R.SegmentCount);
  for (unsigned S = 0; S != NumSpaces; ++S)
    Runs[S].clear();
  Fixups.clear();
  Domain = nullptr;
  Bytes = 0;
}

SharedImmutableSpace::SharedImmutableSpace(size_t TotalBytes)
    : Exchange(TotalBytes) {}

SharedImmutableSpace &SharedImmutableSpace::process() {
  static SharedImmutableSpace Instance;
  return Instance;
}

uintptr_t *SharedImmutableSpace::allocateShared(SpaceKind Space,
                                                size_t Words) {
  return SharedContexts[static_cast<unsigned>(Space)].allocate(
      Exchange, Space, SharedGeneration, Words, /*Age=*/0, /*ScopeDepth=*/0,
      SegmentInfo::FlagShared);
}

Value SharedImmutableSpace::sharedStringLocked(std::string_view Contents) {
  auto It = SharedStrings.find(std::string(Contents));
  if (It != SharedStrings.end())
    return Value::fromBits(It->second);
  const uintptr_t Header = makeHeader(ObjectKind::String, Contents.size());
  uintptr_t *W = allocateShared(SpaceKind::Data, objectAllocWords(Header));
  W[0] = Header;
  std::memset(W + 1, 0, (objectAllocWords(Header) - 1) * sizeof(uintptr_t));
  std::memcpy(W + 1, Contents.data(), Contents.size());
  Value Str = Value::object(W);
  SharedStrings.emplace(std::string(Contents), Str.bits());
  return Str;
}

Value SharedImmutableSpace::internSharedLocked(std::string_view Name) {
  auto It = SharedSymbols.find(std::string(Name));
  if (It != SharedSymbols.end())
    return Value::fromBits(It->second);
  Value Str = sharedStringLocked(Name);
  uintptr_t *W = allocateShared(SpaceKind::Typed, 1 + SymbolFieldCount);
  W[0] = makeHeader(ObjectKind::Symbol, SymbolFieldCount);
  W[1 + SymName] = Str.bits();
  W[1 + SymHash] = Value::fixnum(0).bits();
  W[1 + SymPlist] = Value::nil().bits();
  Value Sym = Value::object(W);
  SharedSymbols.emplace(std::string(Name), Sym.bits());
  return Sym;
}

Value SharedImmutableSpace::internShared(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  return internSharedLocked(Name);
}

size_t SharedImmutableSpace::sharedBytes() const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t Words = 0;
  for (unsigned S = 0; S != NumSpaces; ++S)
    Words += SharedContexts[S].usedWords(Exchange);
  return Words * sizeof(uintptr_t);
}

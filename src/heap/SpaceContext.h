//===- heap/SpaceContext.h - Per-(space, generation) allocation -*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bump allocation state for one (space, generation). Objects are
/// allocated into an ordered list of segment runs; the order of objects
/// within the run list is allocation order, which is exactly what the
/// collector's Cheney sweep walks.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_HEAP_SPACECONTEXT_H
#define GENGC_HEAP_SPACECONTEXT_H

#include <utility>
#include <vector>

#include "heap/Arena.h"
#include "support/MathExtras.h"

namespace gengc {

/// A run of contiguous segments holding objects in allocation order.
struct SegmentRun {
  uint32_t FirstSegment = 0;
  uint32_t SegmentCount = 0;
  /// Words of the run occupied by objects. For the run currently being
  /// bumped into, SpaceContext::usedWordsOf() computes this live.
  uint32_t UsedWords = 0;
};

/// Bump-allocation state for one (space, generation).
class SpaceContext {
public:
  /// Allocates \p Words words (Words >= 2) from the context, taking new
  /// runs from \p A tagged (\p Space, \p Generation) as needed. Never
  /// triggers collection; collection policy lives above this layer.
  uintptr_t *allocate(Arena &A, SpaceKind Space, uint8_t Generation,
                      size_t Words, uint8_t Age = 0,
                      uint8_t ScopeDepth = 0, uint8_t ExtraFlags = 0) {
    GENGC_ASSERT(Words >= 2, "objects must be at least two words");
    if (Alloc + Words <= Limit) {
      uintptr_t *P = Alloc;
      Alloc += Words;
      BytesAllocated += Words * sizeof(uintptr_t);
      return P;
    }
    return allocateSlow(A, Space, Generation, Words, Age, ScopeDepth,
                        ExtraFlags);
  }

  const std::vector<SegmentRun> &runs() const { return Runs; }

  /// Words used in run \p I, accounting for the live bump pointer of the
  /// current (last) run.
  size_t usedWordsOf(const Arena &A, size_t I) const {
    const SegmentRun &R = Runs[I];
    if (I + 1 == Runs.size() && Alloc != nullptr) {
      uintptr_t *RunBase = A.segmentBase(R.FirstSegment);
      if (Alloc >= RunBase &&
          Alloc <= RunBase + static_cast<size_t>(R.SegmentCount) *
                                 SegmentWords)
        return static_cast<size_t>(Alloc - RunBase);
    }
    return R.UsedWords;
  }

  /// Total bytes ever bump-allocated in this context (monotonic until
  /// reset()).
  uint64_t bytesAllocated() const { return BytesAllocated; }

  /// Total words currently occupied by objects.
  size_t usedWords(const Arena &A) const {
    size_t Total = 0;
    for (size_t I = 0, E = Runs.size(); I != E; ++I)
      Total += usedWordsOf(A, I);
    return Total;
  }

  bool empty() const { return Runs.empty(); }

  /// Detaches the run list (for use as a collection's from-space) and
  /// resets the context to empty.
  std::vector<SegmentRun> takeRuns(const Arena &A) {
    sealCurrentRun(A);
    std::vector<SegmentRun> Out = std::move(Runs);
    Runs.clear();
    Alloc = Limit = nullptr;
    BytesAllocated = 0;
    return Out;
  }

  /// Records the final used size of the run being bumped into. Called
  /// before the run list is walked or detached.
  void sealCurrentRun(const Arena &A) {
    if (!Runs.empty())
      Runs.back().UsedWords = static_cast<uint32_t>(usedWordsOf(A, Runs.size() - 1));
  }

  /// Adopts another context's sealed runs (a parallel-scavenge worker
  /// lane) onto the end of this context's run list, in the donor's run
  /// order. Seals this context's live run first and drops the bump
  /// pointer, so the next allocation opens a fresh run after the adopted
  /// ones — the run list stays "allocation order per run" even though
  /// the donor's objects interleave in time with ours. The donor is left
  /// empty.
  void adoptRuns(const Arena &A, SpaceContext &Donor) {
    if (Donor.Runs.empty() && Donor.BytesAllocated == 0)
      return;
    sealCurrentRun(A);
    Alloc = Limit = nullptr;
    uint64_t DonorBytes = Donor.BytesAllocated;
    std::vector<SegmentRun> Adopted = Donor.takeRuns(A);
    for (const SegmentRun &R : Adopted)
      Runs.push_back(R);
    BytesAllocated += DonorBytes;
  }

private:
  uintptr_t *allocateSlow(Arena &A, SpaceKind Space, uint8_t Generation,
                          size_t Words, uint8_t Age, uint8_t ScopeDepth,
                          uint8_t ExtraFlags) {
    sealCurrentRun(A);
    uint32_t NumSegments =
        static_cast<uint32_t>(divideCeil(Words, SegmentWords));
    uint32_t First =
        A.allocateRun(NumSegments, Space, Generation, Age, ScopeDepth,
                      ExtraFlags);
    Runs.push_back({First, NumSegments, 0});
    uintptr_t *RunBase = A.segmentBase(First);
    Alloc = RunBase + Words;
    Limit = RunBase + static_cast<size_t>(NumSegments) * SegmentWords;
    BytesAllocated += Words * sizeof(uintptr_t);
    return RunBase;
  }

  std::vector<SegmentRun> Runs;
  uintptr_t *Alloc = nullptr;
  uintptr_t *Limit = nullptr;
  uint64_t BytesAllocated = 0;
};

} // namespace gengc

#endif // GENGC_HEAP_SPACECONTEXT_H

//===- heap/Arena.cpp - Segmented memory arena ----------------*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "heap/Arena.h"

#include <algorithm>
#include <sys/mman.h>

#include "support/MathExtras.h"

using namespace gengc;

Arena::Arena(size_t TotalBytes) {
  TotalBytes = alignTo(TotalBytes, SegmentBytes);
  GENGC_ASSERT(TotalBytes >= SegmentBytes, "arena too small");
  // MAP_NORESERVE keeps the reservation cheap: pages are committed only
  // when a segment is actually used.
  void *Mem = ::mmap(nullptr, TotalBytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  GENGC_ASSERT(Mem != MAP_FAILED, "arena reservation failed");
  Base = reinterpret_cast<uintptr_t>(Mem);
  GENGC_ASSERT(isAligned(Base, SegmentBytes),
               "mmap returned an unaligned region");
  TotalSegments = TotalBytes / SegmentBytes;
  Infos.resize(TotalSegments);
  FreeRuns.push_back({0, static_cast<uint32_t>(TotalSegments)});
}

Arena::~Arena() {
  if (Base)
    ::munmap(reinterpret_cast<void *>(Base), TotalSegments * SegmentBytes);
}

uint32_t Arena::allocateRun(uint32_t NumSegments, SpaceKind Space,
                            uint8_t Generation, uint8_t Age,
                            uint8_t ScopeDepth, uint8_t ExtraFlags) {
  GENGC_ASSERT(NumSegments > 0, "empty run requested");
  std::lock_guard<std::mutex> Guard(RunLock);
  // First fit over the sorted free list.
  for (size_t I = 0, E = FreeRuns.size(); I != E; ++I) {
    FreeRun &R = FreeRuns[I];
    if (R.Count < NumSegments)
      continue;
    uint32_t First = R.First;
    if (R.Count == NumSegments)
      FreeRuns.erase(FreeRuns.begin() + static_cast<ptrdiff_t>(I));
    else {
      R.First += NumSegments;
      R.Count -= NumSegments;
    }
    for (uint32_t S = First; S != First + NumSegments; ++S) {
      SegmentInfo &Info = Infos[S];
      GENGC_ASSERT(!Info.inUse(), "allocating an in-use segment");
      Info.Space = Space;
      Info.Generation = Generation;
      Info.Age = Age;
      Info.ScopeDepth = ScopeDepth;
      Info.Flags = SegmentInfo::FlagInUse | ExtraFlags;
    }
    InUseCount += NumSegments;
    if (Observer)
      Observer(ObserverCtx, /*IsAlloc=*/true, First, NumSegments, Space,
               Generation);
    return First;
  }
  GENGC_UNREACHABLE("heap exhausted: arena has no free run of the "
                    "requested size");
}

void Arena::freeRun(uint32_t FirstSegment, uint32_t NumSegments) {
  GENGC_ASSERT(FirstSegment + NumSegments <= TotalSegments,
               "freeing segments outside the arena");
  std::lock_guard<std::mutex> Guard(RunLock);
  if (Observer) {
    // Report before the entries are cleared so the observer still sees
    // the run's space and generation tags.
    const SegmentInfo &Info = Infos[FirstSegment];
    Observer(ObserverCtx, /*IsAlloc=*/false, FirstSegment, NumSegments,
             Info.Space, Info.Generation);
  }
  for (uint32_t S = FirstSegment; S != FirstSegment + NumSegments; ++S) {
    SegmentInfo &Info = Infos[S];
    GENGC_ASSERT(Info.inUse(), "double free of segment");
    Info = SegmentInfo();
  }
  InUseCount -= NumSegments;

  // Insert sorted and merge with neighbors.
  FreeRun NewRun{FirstSegment, NumSegments};
  auto It = std::lower_bound(
      FreeRuns.begin(), FreeRuns.end(), NewRun,
      [](const FreeRun &A, const FreeRun &B) { return A.First < B.First; });
  It = FreeRuns.insert(It, NewRun);
  // Merge with successor.
  if (It + 1 != FreeRuns.end() && It->First + It->Count == (It + 1)->First) {
    It->Count += (It + 1)->Count;
    FreeRuns.erase(It + 1);
  }
  // Merge with predecessor.
  if (It != FreeRuns.begin()) {
    auto Prev = It - 1;
    if (Prev->First + Prev->Count == It->First) {
      Prev->Count += It->Count;
      FreeRuns.erase(It);
    }
  }
}

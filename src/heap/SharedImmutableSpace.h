//===- heap/SharedImmutableSpace.h - Process-wide exchange space -*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide exchange domain backing zero-copy inter-shard
/// transfer (DESIGN.md §14). One arena, distinct from every shard's
/// private arena, serves two kinds of segments:
///
///  - **Shared immutable segments** (SegmentInfo::FlagShared, Generation
///    == SharedGeneration): frozen, never collected, never moved,
///    referenceable from every shard without barriers or copies.
///    Published via the freeze-and-publish protocol (freeze() /
///    internShared()); nothing may ever store into them — the write
///    barrier aborts on such stores, and tools/rootcheck lints for them
///    statically.
///
///  - **Donation segments** (SegmentInfo::FlagDonated): sealed segments
///    holding a self-contained message graph copied out (or re-tagged
///    wholesale from a donation scope) by a sending shard. While in
///    flight they carry Generation 0 and are owned by the DonatedGraph
///    handle; on receipt, Heap::adoptDonatedGraph retags them to the
///    receiver's oldest generation and appends them to its tenured run
///    lists — ownership moves, bytes do not.
///
/// Thread safety: freeze/internShared serialize on one mutex (publishing
/// is rare and cold); donation copy-out allocates runs through the
/// arena's own run lock, one lock acquisition per run, never per object
/// — the collector itself stays lock-free.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_HEAP_SHAREDIMMUTABLESPACE_H
#define GENGC_HEAP_SHAREDIMMUTABLESPACE_H

#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "heap/Arena.h"
#include "heap/SpaceContext.h"
#include "object/Value.h"

namespace gengc {

class Heap;
class SharedImmutableSpace;

/// A symbol slot inside a donated graph. Symbols keep per-heap eq?
/// identity through the intern table, so they are never donated; the
/// copy-out leaves #f in the slot and records the name, and adoption
/// re-interns the name on the receiving heap and patches the slot —
/// exactly the by-name transfer the deep-copy encoder performs.
struct DonatedSymbolFixup {
  /// The placeholder word inside the donated segments. Stable for the
  /// graph's whole life: donation segments never move until after
  /// adoption patches them.
  uintptr_t *Slot;
  /// Tagged bits of the donated container holding Slot — equally stable.
  /// Adoption patches Slot with a freshly interned (generation 0)
  /// symbol while the container sits in the oldest generation, so the
  /// container must enter the receiver's remembered set.
  uintptr_t ContainerBits;
  /// The slot is a weak pair's car; adoption then records the container
  /// in the weak remembered set instead of the strong one.
  bool WeakCar;
  std::string Name;
};

/// A self-contained message graph living in sealed donation segments of
/// the exchange arena. Move-only; the handle owns the segments until
/// adoption (Heap::adoptDonatedGraph empties it) or destruction (the
/// runs are freed back to the exchange arena — a dropped message leaks
/// nothing).
struct DonatedGraph {
  SharedImmutableSpace *Domain = nullptr;
  /// Donated runs per space, in copy-out allocation order with
  /// UsedWords sealed. Space tags matter: weak pairs must land in
  /// weak-pair-space segments so the receiving collector keeps treating
  /// them as weak.
  std::vector<SegmentRun> Runs[NumSpaces];
  /// The graph's root: a tagged pointer into the donated segments, a
  /// shared-immutable pointer, or an immediate. Meaningless when
  /// RootIsSymbol.
  uintptr_t RootBits = 0;
  /// The root itself is a symbol: nothing was copied, adoption interns
  /// RootSymbolName instead of reading RootBits.
  bool RootIsSymbol = false;
  std::string RootSymbolName;
  std::vector<DonatedSymbolFixup> Fixups;
  /// Payload bytes resident in the donated runs — the bytes the
  /// receiver does NOT copy.
  uint64_t Bytes = 0;
  /// GcFaultInjection::LeakDonatedSegment: destruction skips freeing the
  /// runs, leaking them in the exchange arena for the fuzz audit to
  /// catch.
  bool LeakOnDrop = false;

  DonatedGraph() = default;
  DonatedGraph(const DonatedGraph &) = delete;
  DonatedGraph &operator=(const DonatedGraph &) = delete;
  DonatedGraph(DonatedGraph &&O) noexcept { *this = std::move(O); }
  DonatedGraph &operator=(DonatedGraph &&O) noexcept {
    if (this != &O) {
      release();
      Domain = O.Domain;
      for (unsigned S = 0; S != NumSpaces; ++S)
        Runs[S] = std::move(O.Runs[S]);
      RootBits = O.RootBits;
      RootIsSymbol = O.RootIsSymbol;
      RootSymbolName = std::move(O.RootSymbolName);
      Fixups = std::move(O.Fixups);
      Bytes = O.Bytes;
      LeakOnDrop = O.LeakOnDrop;
      O.Domain = nullptr;
      for (unsigned S = 0; S != NumSpaces; ++S)
        O.Runs[S].clear();
      O.Fixups.clear();
      O.Bytes = 0;
    }
    return *this;
  }
  ~DonatedGraph() { release(); }

  bool empty() const {
    for (unsigned S = 0; S != NumSpaces; ++S)
      if (!Runs[S].empty())
        return false;
    return true;
  }

  size_t segmentCount() const {
    size_t N = 0;
    for (unsigned S = 0; S != NumSpaces; ++S)
      for (const SegmentRun &R : Runs[S])
        N += R.SegmentCount;
    return N;
  }

  /// Frees the runs back to the exchange arena (a dropped, never-adopted
  /// message). Adoption clears the run lists first, so an adopted
  /// graph's handle releases nothing.
  void release();
};

/// The process-wide read-only + donation exchange domain. Normally a
/// process has exactly one (process()); tests and the fuzzer construct
/// private instances so segment-ownership accounting is exact per run.
class SharedImmutableSpace {
public:
  /// Reserves \p TotalBytes of lazily-committed address space for the
  /// exchange arena.
  explicit SharedImmutableSpace(size_t TotalBytes = 256u * 1024 * 1024);

  SharedImmutableSpace(const SharedImmutableSpace &) = delete;
  SharedImmutableSpace &operator=(const SharedImmutableSpace &) = delete;

  /// The default process-wide instance every Heap binds to unless
  /// HeapConfig::Exchange names another.
  static SharedImmutableSpace &process();

  Arena &arena() { return Exchange; }
  const Arena &arena() const { return Exchange; }

  /// True if \p V points into the exchange arena (shared or donated).
  bool holds(Value V) const {
    return V.isHeapPointer() && Exchange.containsAddress(V.heapAddress());
  }

  //===------------------------------------------------------------------===//
  // Freeze-and-publish. Both entry points only read the source heap (no
  // safepoints), so raw source Values stay valid throughout.
  //===------------------------------------------------------------------===//

  /// Interns \p Name in the process-wide shared symbol table. Shared
  /// symbols are distinct objects from any shard's privately interned
  /// symbols (per-heap eq? identity is preserved by per-heap interning);
  /// they exist for compiled-code constants and other published
  /// structures that must be referenceable from every shard.
  Value internShared(std::string_view Name);

  /// Recursively copies \p V into shared immutable segments and returns
  /// the frozen copy. Supports strings, bytevectors, flonums, vectors,
  /// ordinary pairs (cycles and sharing preserved within one call), and
  /// symbols (routed through internShared). Strings are deduplicated by
  /// content. Already-shared values return themselves. Mutable kinds
  /// that cannot be meaningfully frozen (boxes, closures, weak pairs,
  /// guardians, ports) abort.
  Value freeze(Heap &H, Value V);

  //===------------------------------------------------------------------===//
  // Ownership accounting (fuzz audit, tests, telemetry).
  //===------------------------------------------------------------------===//

  /// In-use segments carrying every flag in \p FlagMask. O(total
  /// segments) scan; audit/test path only.
  size_t segmentsWithFlags(uint8_t FlagMask) const {
    size_t N = 0;
    for (size_t I = 0, E = Exchange.totalSegments(); I != E; ++I) {
      const SegmentInfo &Info = Exchange.infoAt(static_cast<uint32_t>(I));
      if (Info.inUse() && (Info.Flags & FlagMask) == FlagMask)
        ++N;
    }
    return N;
  }
  size_t donatedSegmentsInUse() const {
    return segmentsWithFlags(SegmentInfo::FlagDonated);
  }
  size_t sharedSegmentsInUse() const {
    return segmentsWithFlags(SegmentInfo::FlagShared);
  }

  /// Bytes currently published in shared immutable segments.
  size_t sharedBytes() const;

private:
  friend struct DonatedGraph;

  uintptr_t *allocateShared(SpaceKind Space, size_t Words);
  Value freezeRec(Heap &H, Value V,
                  std::unordered_map<uintptr_t, uintptr_t> &Memo);
  Value internSharedLocked(std::string_view Name);
  Value sharedStringLocked(std::string_view Contents);

  mutable std::mutex Mu;
  Arena Exchange;
  /// Bump contexts for shared-immutable publishing (guarded by Mu).
  SpaceContext SharedContexts[NumSpaces];
  /// name -> shared symbol bits.
  std::unordered_map<std::string, uintptr_t> SharedSymbols;
  /// contents -> shared string bits (freeze dedup).
  std::unordered_map<std::string, uintptr_t> SharedStrings;
};

} // namespace gengc

#endif // GENGC_HEAP_SHAREDIMMUTABLESPACE_H

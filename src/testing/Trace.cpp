//===- testing/Trace.cpp - Random mutator traces --------------------------===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "testing/Trace.h"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "support/XorShift.h"

using namespace gengc;
using namespace gengc::gcfuzz;

namespace {

struct OpInfo {
  Op Code;
  const char *Name;
  unsigned Weight;
};

// Weights shape the mix toward the interactions the paper cares about:
// plenty of pairs and mutation (remembered-set traffic), a steady
// trickle of guardians and weak pairs, and enough drops/collections
// that objects actually die while registered.
const OpInfo OpTable[NumOps] = {
    {Op::Cons, "cons", 12},
    {Op::WeakCons, "weak-cons", 8},
    {Op::MakeVector, "make-vector", 5},
    {Op::MakeLargeVector, "make-large-vector", 1},
    {Op::MakeString, "make-string", 3},
    {Op::MakeBytevector, "make-bytevector", 2},
    {Op::MakeFlonum, "make-flonum", 2},
    {Op::MakeBox, "make-box", 3},
    {Op::MakeRecord, "make-record", 3},
    {Op::Intern, "intern", 4},
    {Op::SetCar, "set-car!", 6},
    {Op::SetCdr, "set-cdr!", 5},
    {Op::VectorSet, "vector-set!", 4},
    {Op::BoxSet, "box-set!", 2},
    {Op::RecordSet, "record-set!", 2},
    {Op::RootPush, "root-push", 4},
    {Op::RootPop, "root-pop", 3},
    {Op::DropSlot, "drop-slot", 7},
    {Op::DupSlot, "dup-slot", 3},
    {Op::GuardianNew, "guardian-new", 3},
    {Op::Guard, "guard", 6},
    {Op::GuardWithAgent, "guard-with-agent", 3},
    {Op::Retrieve, "retrieve", 5},
    {Op::Drain, "drain", 2},
    {Op::Collect, "collect", 4},
    // Scoped alphabet: enough opens/closes that scopes actually cycle
    // within a trace, and a churn op so most scope allocation is
    // request-local garbage (the case the design optimizes for).
    {Op::ScopeOpen, "scope-open", 4},
    {Op::ScopeClose, "scope-close", 5},
    {Op::AllocInScope, "alloc-in-scope", 6},
    // Donation alphabet: sends outnumber drops so graphs usually get
    // adopted (the interesting path), but enough drop early that
    // segment reclamation without adoption is exercised too.
    {Op::DonateSend, "donate-send", 5},
    {Op::DonateReceive, "donate-receive", 5},
    {Op::DonateDrop, "donate-drop", 2},
};

/// Total weight of the first \p Count table entries. Unscoped traces
/// draw over the first NumUnscopedOps only, which keeps every
/// historical (Seed, OpCount) trace byte-identical.
unsigned totalWeight(unsigned Count) {
  unsigned W = 0;
  for (unsigned I = 0; I != Count; ++I)
    W += OpTable[I].Weight;
  return W;
}

} // namespace

const char *gengc::gcfuzz::opName(Op O) {
  for (const OpInfo &I : OpTable)
    if (I.Code == O)
      return I.Name;
  return "unknown";
}

bool gengc::gcfuzz::opFromName(const std::string &Name, Op &O) {
  for (const OpInfo &I : OpTable)
    if (Name == I.Name) {
      O = I.Code;
      return true;
    }
  return false;
}

Trace gengc::gcfuzz::generateTrace(uint64_t Seed, size_t OpCount,
                                   bool Scoped, bool Donation) {
  Trace T;
  T.Seed = Seed;
  T.Ops.reserve(OpCount);
  XorShift Rng(Seed);
  const unsigned Total = totalWeight(
      Donation ? NumOps : Scoped ? NumScopedOps : NumUnscopedOps);
  for (size_t I = 0; I != OpCount; ++I) {
    uint64_t Pick = Rng.nextBelow(Total);
    const OpInfo *Chosen = &OpTable[0];
    for (const OpInfo &Info : OpTable) {
      if (Pick < Info.Weight) {
        Chosen = &Info;
        break;
      }
      Pick -= Info.Weight;
    }
    TraceOp OpRec;
    OpRec.Code = static_cast<uint8_t>(Chosen->Code);
    OpRec.A = static_cast<uint32_t>(Rng.next());
    OpRec.B = static_cast<uint32_t>(Rng.next());
    OpRec.C = static_cast<uint32_t>(Rng.next());
    T.Ops.push_back(OpRec);
  }
  return T;
}

std::string gengc::gcfuzz::serializeTrace(const Trace &T) {
  std::ostringstream OS;
  OS << "gcfuzz-trace v1\n";
  OS << "seed " << T.Seed << "\n";
  for (const TraceOp &O : T.Ops)
    OS << opName(static_cast<Op>(O.Code)) << " " << O.A << " " << O.B
       << " " << O.C << "\n";
  return OS.str();
}

bool gengc::gcfuzz::deserializeTrace(const std::string &Text, Trace &T,
                                     std::string &Error) {
  std::istringstream IS(Text);
  std::string Line;
  if (!std::getline(IS, Line) || Line != "gcfuzz-trace v1") {
    Error = "missing 'gcfuzz-trace v1' header";
    return false;
  }
  T = Trace();
  size_t LineNo = 1;
  while (std::getline(IS, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream LS(Line);
    std::string Head;
    LS >> Head;
    if (Head == "seed") {
      LS >> T.Seed;
      continue;
    }
    Op Code;
    if (!opFromName(Head, Code)) {
      Error = "line " + std::to_string(LineNo) + ": unknown op '" +
              Head + "'";
      return false;
    }
    TraceOp O;
    O.Code = static_cast<uint8_t>(Code);
    if (!(LS >> O.A >> O.B >> O.C)) {
      Error = "line " + std::to_string(LineNo) +
              ": expected three operands";
      return false;
    }
    T.Ops.push_back(O);
  }
  return true;
}

//===- testing/ShadowModel.h - Non-moving reachability oracle -*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A shadow heap model for model-differential testing (tools/gcfuzz).
/// The model mirrors every mutator operation the fuzzer performs against
/// the real Heap, but its objects never move: each is a small struct
/// addressed by a stable integer id. collect() then computes what the
/// paper's collector *must* do for a collection of generation G —
/// exact reachability from the roots plus every object in an older
/// generation (modeling remembered-set conservatism, floating garbage
/// included), the Section 4 guardian classification/salvage fixpoint in
/// entry order, Section 5 agents, weak-car breaking, weak symbol-table
/// reclamation, and the tenure/promotion schedule — and predicts the
/// collection's GcStats counters and the post-collection census.
///
/// The model is deliberately a *mirror of the specified algorithm*, not
/// of the implementation: it knows nothing about segments, forwarding
/// pointers, remembered sets, or sweep order. Agreement with the real
/// heap after every collection (checked by testing/TraceRunner.cpp) is
/// therefore evidence about the algorithm's observable behavior, not a
/// tautology.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_TESTING_SHADOWMODEL_H
#define GENGC_TESTING_SHADOWMODEL_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "gc/HeapConfig.h"
#include "gc/telemetry/Census.h"
#include "heap/Arena.h"
#include "object/Value.h"

namespace gengc {
namespace gcfuzz {

/// Stable id of a shadow object (index into ShadowModel::Objects).
using ObjId = uint32_t;
constexpr ObjId NoObj = ~0u;

/// Kinds the fuzzer allocates. A subset of the real heap's kinds; each
/// maps onto exactly one (CensusKind, SpaceKind) pair.
enum class SKind : uint8_t {
  Pair = 0,
  WeakPair,
  Vector,
  String,
  Symbol,
  Box,
  Flonum,
  Bytevector,
  Record,
};

/// A model value: either the raw bits of an immediate/fixnum Value, or
/// a shadow object id. Heap addresses never appear here — that is the
/// point.
struct SVal {
  ObjId Id = NoObj;
  uintptr_t Imm = 0;
  bool IsId = false;

  static SVal immediate(Value V) {
    SVal S;
    S.Imm = V.bits();
    return S;
  }
  static SVal object(ObjId Id) {
    SVal S;
    S.Id = Id;
    S.IsId = true;
    return S;
  }

  bool operator==(const SVal &O) const {
    return IsId == O.IsId && (IsId ? Id == O.Id : Imm == O.Imm);
  }
  bool operator!=(const SVal &O) const { return !(*this == O); }
};

/// One shadow object.
struct SObj {
  SKind Kind = SKind::Pair;
  uint8_t Gen = 0;
  uint8_t Age = 0;
  /// Request-scope depth (0 = the generational ladder). Objects born
  /// while a scope is open carry the innermost depth, exactly like the
  /// real allocator's segment tag; closeScope() rewrites survivors to
  /// the enclosing depth.
  uint8_t Scope = 0;
  bool Alive = true;
  /// Part of a guardian tconc queue (header, sentinel, or collector-
  /// appended cell). Excluded from the fuzzer's set-car!/set-cdr!
  /// targets so the tconc protocol invariants hold.
  bool TconcPart = false;
  /// The tconc's header pair specifically (a valid retrieve target).
  bool TconcHeader = false;
  /// Element count (vector/record) or byte count (string/bytevector).
  uint32_t Length = 0;
  /// Tagged fields: {car, cdr} for pairs, payload slots otherwise.
  std::vector<SVal> Fields;
  /// String contents.
  std::string Data;
  /// Flonum payload, bit-exact.
  uint64_t FloBits = 0;
};

/// A protected-list entry (mirrors Heap::ProtectedEntry).
struct SEntry {
  SVal Obj, Tconc, Agent;
};

/// The GcStats counters the model predicts exactly. Counters tied to
/// implementation details (RootsScanned, WeakPairsExamined,
/// SegmentsFreed, timings) are deliberately absent.
struct ModelGcStats {
  uint64_t ObjectsCopied = 0;
  uint64_t BytesCopied = 0;
  uint64_t ObjectsPromoted = 0;
  uint64_t BytesInFromSpace = 0;
  uint64_t ProtectedEntriesVisited = 0;
  uint64_t GuardianObjectsSaved = 0;
  uint64_t ProtectedEntriesKept = 0;
  uint64_t GuardianEntriesDropped = 0;
  uint64_t GuardianLoopIterations = 0;
  uint64_t WeakPointersBroken = 0;
  uint64_t SymbolsDropped = 0;
};

/// The ScopeCloseStats counters the model predicts exactly
/// (SegmentsFreed, WeakPairsExamined, and timings are implementation
/// detail and deliberately absent).
struct ModelScopeStats {
  uint64_t ObjectsEvacuated = 0;
  uint64_t BytesEvacuated = 0;
  uint64_t BytesInScope = 0;
  uint64_t ProtectedEntriesVisited = 0;
  uint64_t GuardianObjectsSaved = 0;
  uint64_t ProtectedEntriesKept = 0;
  uint64_t GuardianEntriesDropped = 0;
  uint64_t GuardianLoopIterations = 0;
  uint64_t WeakPointersBroken = 0;
  uint64_t SymbolsDropped = 0;
};

/// The Heap::census() numbers the model predicts (SegmentCount is
/// allocator policy, not semantics, and is not predicted).
struct ModelCensus {
  uint64_t ObjectCount[MaxGenerations][NumSpaces] = {};
  uint64_t UsedBytes[MaxGenerations][NumSpaces] = {};
  uint64_t KindCounts[NumCensusKinds] = {};
  uint64_t KindBytes[NumCensusKinds] = {};
};

class ShadowModel {
public:
  explicit ShadowModel(const HeapConfig &Cfg)
      : Generations(Cfg.Generations), TenureCopies(Cfg.TenureCopies),
        WeakSymbolTable(Cfg.WeakSymbolTable), Protected(Cfg.Generations) {}

  //===------------------------------------------------------------------===//
  // Mutator mirror. Each returns the new object's id; new objects are
  // born in generation 0, age 0, exactly like the real allocator.
  //===------------------------------------------------------------------===//

  ObjId cons(SVal Car, SVal Cdr);
  ObjId weakCons(SVal Car, SVal Cdr);
  ObjId makeVector(uint32_t Length, SVal Fill);
  ObjId makeString(const std::string &Data);
  ObjId makeBytevector(uint32_t Length);
  ObjId makeFlonum(uint64_t FloBits);
  ObjId makeBox(SVal V);
  ObjId makeRecord(SVal Tag, uint32_t FieldCount, SVal Fill);
  /// Returns the interned symbol (allocating a string + symbol when the
  /// name is absent, mirroring Heap::intern's order).
  SVal intern(const std::string &Name);
  /// (let ([z (cons #f '())]) (cons z z)); returns the header's id.
  ObjId makeGuardianTconc();

  /// Raw field store (car == field 0, cdr == field 1 for pairs). The
  /// model needs no write barrier: collect() treats every old object as
  /// a root, which is exactly what the barrier + remembered sets buy
  /// the real collector.
  void setField(ObjId Obj, uint32_t Index, SVal V);

  /// Mirrors Heap::protectedListFor: the entry parks on the protected
  /// list of the deepest open scope any participant lives in, else the
  /// generation-0 list.
  void guardianProtect(ObjId Tconc, SVal Obj, SVal Agent);
  /// Figure 4 retrieve, including clearing the vacated cell.
  SVal guardianRetrieve(ObjId Tconc);
  bool guardianHasPending(ObjId Tconc) const;

  //===------------------------------------------------------------------===//
  // Request scopes (DESIGN.md §13).
  //===------------------------------------------------------------------===//

  void openScope();

  struct ScopeCloseOutcome {
    ModelScopeStats Stats;
    /// Indexed by pre-close id: was the object evacuated into the
    /// enclosing extent? Only meaningful for members of the closed
    /// scope; everything else is 0. Ids >= PreCount were born during
    /// the close (guardian tconc cells).
    std::vector<char> Copied;
    size_t PreCount = 0;
    unsigned Depth = 0;
  };

  /// Closes the innermost scope: members reachable from outside it
  /// (roots, any live non-member's strong fields — the escape sets'
  /// conservatism — the strong symbol table, and the Section 4
  /// guardian fixpoint over the scope's own protected list) graduate
  /// to the enclosing depth; the rest die untraced.
  ScopeCloseOutcome closeScope();

  //===------------------------------------------------------------------===//
  // Collection.
  //===------------------------------------------------------------------===//

  struct CollectOutcome {
    ModelGcStats Stats;
    /// Indexed by pre-collection id: was the object copied (live and in
    /// a collected generation)? Ids >= PreCount were born during the
    /// collection (guardian tconc cells).
    std::vector<char> Copied;
    size_t PreCount = 0;
    unsigned Collected = 0;
    unsigned Target = 0;
  };

  /// Runs the model collection for a collection of generations
  /// 0..RequestedGeneration (clamped), updating liveness, generations,
  /// guardians, weak pairs, and the symbol table.
  CollectOutcome collect(unsigned RequestedGeneration);

  /// Predicts Heap::census() from the current alive set.
  ModelCensus censusExpect() const;

  //===------------------------------------------------------------------===//
  // Segment donation (DESIGN.md §14). The model mirror of
  // Heap::donateGraph / Heap::adoptDonatedGraph: a GraphSnapshot is a
  // heap-independent structural copy of a donated graph (the shadow of
  // a DonatedGraph handle), and adoptGraph instantiates it as fresh
  // objects in the oldest generation, exactly like adoption retags the
  // donated segments tenured.
  //===------------------------------------------------------------------===//

  /// One value inside a snapshot: a raw immediate, an index into
  /// GraphSnapshot::Nodes, or a symbol carried by name (symbols travel
  /// as fixups, never as copies — mirroring DonatedSymbolFixup).
  struct SnapVal {
    enum class K : uint8_t { Imm, Node, Symbol };
    K Kind = K::Imm;
    uintptr_t Imm = 0;
    uint32_t Node = 0;
    std::string Name;
  };

  /// One copied object. Guardian/tconc roles deliberately do not
  /// travel: donation copies payload bits only, so an adopted copy of
  /// a tconc cell is an ordinary pair.
  struct SnapNode {
    SKind Kind = SKind::Pair;
    uint32_t Length = 0;
    std::vector<SnapVal> Fields;
    std::string Data;
    uint64_t FloBits = 0;
  };

  struct GraphSnapshot {
    SnapVal Root;
    std::vector<SnapNode> Nodes;
    /// Words the donation copy-out bump-allocates — must equal
    /// DonatedGraph::Bytes / 8 (the runner's size cross-check).
    uint64_t Words = 0;
  };

  /// Snapshots the graph rooted at \p Root: weak cars traversed
  /// strongly, symbols recorded by name and not traversed, sharing and
  /// cycles preserved by node index — the same walk donateGraph does.
  GraphSnapshot snapshotGraph(SVal Root) const;

  /// Instantiates \p G as fresh objects born directly in the oldest
  /// generation at scope depth 0 (adopted segments join the tenured
  /// space), interning each symbol fixup by name. Returns the adopted
  /// root.
  SVal adoptGraph(const GraphSnapshot &G);

  const SObj &obj(ObjId Id) const { return Objects[Id]; }
  bool alive(ObjId Id) const { return Objects[Id].Alive; }

  /// Words the real allocator reserves for this object
  /// (objectAllocWords; pairs take two words).
  static size_t allocWords(const SObj &O);

  unsigned Generations;
  unsigned TenureCopies;
  bool WeakSymbolTable;

  std::vector<SObj> Objects;
  /// Mirrors the runner's RootVector of explicitly pushed roots.
  std::vector<SVal> RootStack;
  /// Mirrors the operands rooted for the duration of one trace op.
  std::vector<SVal> Scratch;
  /// Protected lists, one per generation (Section 4).
  std::vector<std::vector<SEntry>> Protected;
  /// Per-scope protected lists, one per open scope (index depth - 1).
  std::vector<std::vector<SEntry>> ScopeProtected;
  /// Current open-scope depth (0 = none).
  unsigned ScopeDepth = 0;
  /// Intern table: name -> symbol id.
  std::unordered_map<std::string, ObjId> Symbols;

private:
  ObjId newObject(SKind Kind);
  unsigned scopeOf(const SVal &V) const;
};

} // namespace gcfuzz
} // namespace gengc

#endif // GENGC_TESTING_SHADOWMODEL_H

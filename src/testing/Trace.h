//===- testing/Trace.h - Random mutator traces ----------------*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A trace is a flat list of (opcode, A, B, C) tuples — a tiny random
/// mutator program. Operand words are raw 32-bit values; the interpreter
/// (testing/TraceRunner.cpp) resolves them against whatever state exists
/// when the op runs (slot scans, modular clamps), so *every* operand
/// value is valid in *every* context. That property is what makes greedy
/// op deletion a sound shrinking strategy: removing ops never produces
/// an invalid trace, only a different one.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_TESTING_TRACE_H
#define GENGC_TESTING_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace gengc {
namespace gcfuzz {

/// Trace opcodes. Collectively they exercise every mutator-facing
/// surface the paper's semantics cover: allocation in all four spaces
/// (including multi-segment large objects), barriered mutation, weak
/// pairs, symbol interning, guardian create/guard/retrieve/drain with
/// and without Section 5 agents, root liveness changes, and explicit
/// collections of every generation.
enum class Op : uint8_t {
  Cons = 0,
  WeakCons,
  MakeVector,
  MakeLargeVector, ///< Hundreds of slots: multi-segment runs.
  MakeString,
  MakeBytevector,
  MakeFlonum,
  MakeBox,
  MakeRecord,
  Intern,
  SetCar,
  SetCdr,
  VectorSet,
  BoxSet,
  RecordSet,
  RootPush,
  RootPop,
  DropSlot, ///< Unguard-by-drop: make an object unreachable.
  DupSlot,
  GuardianNew,
  Guard,
  GuardWithAgent,
  Retrieve,
  Drain,
  Collect,
  // Scoped ops (DESIGN.md §13). Appended after the unscoped alphabet so
  // unscoped generation, which draws over the first NumUnscopedOps
  // entries only, reproduces historical traces byte-for-byte.
  ScopeOpen,    ///< openScope(), bounded nesting.
  ScopeClose,   ///< closeScope(): evacuate escapes, cross-check.
  AllocInScope, ///< A garbage-heavy pair chain in the current extent.
  // Donation ops (DESIGN.md §14). Appended after the scoped alphabet so
  // scoped generation, which draws over the first NumScopedOps entries
  // only, reproduces historical traces byte-for-byte.
  DonateSend,    ///< donateGraph(slot): snapshot + park in flight.
  DonateReceive, ///< adoptDonatedGraph of an in-flight graph.
  DonateDrop,    ///< Drop an in-flight graph (frees its segments).
};
constexpr unsigned NumUnscopedOps = 25;
constexpr unsigned NumScopedOps = 28;
constexpr unsigned NumOps = 31;

/// Stable text name of an opcode (trace file format).
const char *opName(Op O);
/// Inverse of opName; returns false for unknown names.
bool opFromName(const std::string &Name, Op &O);

struct TraceOp {
  uint8_t Code = 0;
  uint32_t A = 0, B = 0, C = 0;
};

struct Trace {
  uint64_t Seed = 0;
  std::vector<TraceOp> Ops;
};

/// Generates a weighted random trace from the deterministic PRNG
/// (support/XorShift.h). Identical (Seed, OpCount, Scoped, Donation)
/// always yields an identical trace, on every platform. Scoped traces
/// draw from the alphabet including scope-open/scope-close/
/// alloc-in-scope; donation traces add donate-send/donate-receive/
/// donate-drop on top of the scoped alphabet. Unscoped traces are
/// byte-identical to those this function generated before scopes or
/// donation existed.
Trace generateTrace(uint64_t Seed, size_t OpCount, bool Scoped = false,
                    bool Donation = false);

/// Text round-trip, for committing shrunk failures and --trace-replay.
std::string serializeTrace(const Trace &T);
bool deserializeTrace(const std::string &Text, Trace &T,
                      std::string &Error);

} // namespace gcfuzz
} // namespace gengc

#endif // GENGC_TESTING_TRACE_H

//===- testing/TraceRunner.h - Differential trace execution ---*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a fuzz trace simultaneously against a real Heap and the
/// ShadowModel, cross-checking after *every* collection (automatic,
/// stress-triggered, or explicit):
///
///   - slot liveness and identity: via the fuzz-only forwarding witness
///     (Heap::setForwardWitness), every unrooted handle the harness
///     holds is either moved exactly when the model says its object is
///     live in a collected generation, or reclaimed exactly when the
///     model says it died — in both directions;
///   - value-graph isomorphism from all roots (a bijection between
///     shadow ids and heap addresses, with per-object kind, length,
///     content, generation, and weak/ordinary-space agreement) — this
///     subsumes weak-pair break sets in both directions, per-guardian
///     resurrection sets AND tconc order, and re-guarding state;
///   - the predictable GcStats counters (copies, bytes, promotions,
///     guardian bookkeeping, weak breaks, symbol drops);
///   - Heap::census() object counts and byte occupancy, per
///     (generation, space) and per kind;
///   - Heap::verifyHeap() structural invariants.
///
/// A divergence aborts the trace with a diagnostic; shrinkTrace()
/// reduces a diverging trace by greedy chunk deletion.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_TESTING_TRACERUNNER_H
#define GENGC_TESTING_TRACERUNNER_H

#include <string>
#include <vector>

#include "gc/HeapConfig.h"
#include "testing/Trace.h"

namespace gengc {
namespace gcfuzz {

/// A named heap configuration for the fuzz matrix.
struct FuzzConfig {
  std::string Name;
  HeapConfig Config;
};

/// The standard fuzz matrix: the paper's schedule plus tenure-delayed,
/// two-generation/strong-symbol, single-generation, and stress-GC
/// variants. Small Gen0 budgets so every trace triggers automatic
/// collections.
std::vector<FuzzConfig> standardConfigs();

/// Looks up a standard config by name; returns false if unknown.
bool findConfig(const std::string &Name, FuzzConfig &Out);

struct RunResult {
  bool Diverged = false;
  std::string Message;
  /// Index of the trace op being executed when the divergence fired
  /// (Ops.size() for the end-of-trace flush collection).
  size_t OpIndex = 0;
  /// Collections observed over the run.
  uint64_t Collections = 0;
};

/// Runs one trace under one configuration (fresh Heap + fresh model),
/// ending with a full collection so the final state is checked too.
RunResult runTrace(const Trace &T, const HeapConfig &Cfg);

/// Greedy chunk-deletion shrinking: repeatedly removes op windows
/// (halving the window size down to single ops) while the trace still
/// diverges. Bounded by MaxRuns re-executions.
Trace shrinkTrace(const Trace &T, const HeapConfig &Cfg,
                  size_t MaxRuns = 3000);

} // namespace gcfuzz
} // namespace gengc

#endif // GENGC_TESTING_TRACERUNNER_H

//===- testing/TraceRunner.cpp - Differential trace execution -------------===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "testing/TraceRunner.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "gc/Heap.h"
#include "gc/Roots.h"
#include "gc/telemetry/Census.h"
#include "heap/SharedImmutableSpace.h"
#include "object/Layout.h"
#include "testing/ShadowModel.h"

using namespace gengc;
using namespace gengc::gcfuzz;

namespace {

/// Thrown by any cross-check; caught at the top of the run. The heap is
/// never touched again after a divergence (collector bookkeeping flags
/// may be mid-flight when the exception unwinds a safepoint).
struct Divergence {
  std::string Message;
};

/// One trace execution: a real Heap and a ShadowModel advanced in
/// lockstep, cross-checked from the post-GC hook after every
/// collection.
class Session {
public:
  explicit Session(const HeapConfig &Cfg)
      : DonationExchange(8u * 1024 * 1024),
        H(withExchange(Cfg, &DonationExchange)), M(H.config()),
        RootStackReal(H), ScratchReal(H) {
    for (size_t I = 0; I != NumSlots; ++I) {
      SlotId[I] = NoObj;
      SlotBits[I] = 0;
    }
    H.setForwardWitness(&Session::witnessThunk, this);
    H.addPostGcHook(
        [this](Heap &, const GcStats &S) { onCollection(S); });
    H.setScopeCloseHook(
        [this](Heap &, const ScopeCloseStats &S) { onScopeClose(S); });
  }

  RunResult run(const Trace &T) {
    RunResult R;
    try {
      for (size_t I = 0; I != T.Ops.size(); ++I) {
        CurOp = I;
        applyOp(T.Ops[I]);
      }
      // End-of-trace flush: close any scopes the trace left open (each
      // close is itself a cross-checked evacuation), then a full
      // collection so the final heap state is checked even when the
      // trace's own collections came early.
      CurOp = T.Ops.size();
      while (H.scopeDepth() != 0)
        H.closeScope();
      // Drop any still-in-flight donated graphs (freeing their exchange
      // segments — or leaking them under the injected fault, which the
      // audit then catches) before the final full collection.
      if (!InFlight.empty()) {
        InFlight.clear();
        auditDonations();
      }
      H.collectFull();
    } catch (const Divergence &D) {
      R.Diverged = true;
      R.Message = D.Message;
      R.OpIndex = CurOp;
    }
    R.Collections = Collections;
    return R;
  }

private:
  static constexpr size_t NumSlots = 24;
  static constexpr size_t RootStackMax = 40;
  /// Scope nesting the fuzzer exercises (the config's MaxScopeDepth is
  /// an assertion bound, not a target).
  static constexpr unsigned ScopeNestCap = 3;
  /// Donated graphs parked between donate-send and donate-receive/drop.
  static constexpr size_t MaxInFlight = 4;

  /// A private exchange arena per session: donated segments never leak
  /// across traces, so the ownership audit can demand exact counts.
  /// Declared before H — the config handed to the Heap points at it.
  SharedImmutableSpace DonationExchange;
  Heap H;
  ShadowModel M;
  /// Mirror of M.RootStack (explicitly pushed long-lived roots).
  RootVector RootStackReal;
  /// Mirror of M.Scratch (operands rooted for the duration of one op).
  RootVector ScratchReal;

  /// Unrooted handles: the differential core. SlotBits deliberately
  /// holds raw bits, not Roots — the witness map proves the collector
  /// moved or reclaimed each one exactly as the model requires.
  ObjId SlotId[NumSlots];
  uintptr_t SlotBits[NumSlots];

  /// Old-bits -> new-bits pairs from the forwarding witness, one
  /// collection's worth.
  std::unordered_map<uintptr_t, uintptr_t> Witness;

  /// One donated graph in flight: the real handle plus the model's
  /// structural snapshot, taken at the same instant. Receive replays
  /// the snapshot into the model while the heap adopts the handle.
  struct InFlightDonation {
    DonatedGraph G;
    ShadowModel::GraphSnapshot Snap;
  };
  std::vector<InFlightDonation> InFlight;

  uint64_t Collections = 0;
  size_t CurOp = 0;

  static HeapConfig withExchange(HeapConfig Cfg,
                                 SharedImmutableSpace *X) {
    Cfg.Exchange = X;
    return Cfg;
  }

  static void witnessThunk(void *Ctx, uintptr_t OldBits,
                           uintptr_t NewBits) {
    static_cast<Session *>(Ctx)->Witness.emplace(OldBits, NewBits);
  }

  [[noreturn]] void diverge(const std::string &What) {
    throw Divergence{"op " + std::to_string(CurOp) + ", collection " +
                     std::to_string(Collections) + ": " + What};
  }

  //===------------------------------------------------------------------===//
  // Post-collection cross-check.
  //===------------------------------------------------------------------===//

  void onCollection(const GcStats &S) {
    ++Collections;
    ShadowModel::CollectOutcome Out = M.collect(S.CollectedGeneration);
    if (Out.Target != S.TargetGeneration)
      diverge("target generation: model " + std::to_string(Out.Target) +
              ", heap " + std::to_string(S.TargetGeneration));
    syncSlots(Out.Copied, Out.PreCount);
    checkStats(S, Out.Stats);
    checkGraph();
    checkCensus();
    auditDonations();
    H.verifyHeap();
    Witness.clear();
  }

  /// The donation ownership map: every segment the exchange arena has
  /// handed out must be accounted for by exactly one owner — an
  /// in-flight DonatedGraph handle or this heap's adopted tenured
  /// runs. Runs after every donation op and every collection (a full
  /// collection evacuates adopted runs and returns their segments, so
  /// both sides of the equation drop together). A graph leaked on drop
  /// (GcFaultInjection::LeakDonatedSegment) leaves the exchange count
  /// high with no owner, which this catches immediately.
  void auditDonations() {
    size_t Expect = H.adoptedSegments();
    for (const InFlightDonation &D : InFlight)
      Expect += D.G.segmentCount();
    const size_t Actual = DonationExchange.donatedSegmentsInUse();
    if (Actual != Expect)
      diverge("donation ownership: exchange arena holds " +
              std::to_string(Actual) +
              " donated segments, but in-flight handles + adopted runs "
              "account for " +
              std::to_string(Expect) + " (segment leak or double-free)");
  }

  /// The scope-close analogue of onCollection: the model predicts the
  /// evacuation, the witness proves per-slot graduation/reclamation,
  /// and the same graph/census/verify battery runs on what remains.
  void onScopeClose(const ScopeCloseStats &S) {
    ShadowModel::ScopeCloseOutcome Out = M.closeScope();
    if (Out.Depth != S.Depth)
      diverge("scope depth: model " + std::to_string(Out.Depth) +
              ", heap " + std::to_string(S.Depth));
    syncSlots(Out.Copied, Out.PreCount);
    checkScopeStats(S, Out.Stats);
    checkGraph();
    checkCensus();
    H.verifyHeap();
    Witness.clear();
  }

  /// Applies the witness map to the unrooted slots, demanding exact
  /// agreement with model liveness in both directions. Shared by
  /// collections and scope closes: Copied marks the pre-ids the model
  /// says moved this cycle, and anything else must not have moved.
  void syncSlots(const std::vector<char> &Copied, size_t PreCount) {
    for (size_t I = 0; I != NumSlots; ++I) {
      if (SlotId[I] == NoObj)
        continue;
      const ObjId Id = SlotId[I];
      auto It = Witness.find(SlotBits[I]);
      if (!M.alive(Id)) {
        if (It != Witness.end())
          diverge("slot " + std::to_string(I) +
                  ": collector copied an object the model reclaimed");
        SlotId[I] = NoObj;
        SlotBits[I] = 0;
      } else if (Id < PreCount && Copied[Id]) {
        if (It == Witness.end())
          diverge("slot " + std::to_string(I) +
                  ": model-live object in a collected extent was "
                  "not copied (object lost)");
        SlotBits[I] = It->second;
      } else {
        if (It != Witness.end())
          diverge("slot " + std::to_string(I) +
                  ": object outside the collected extent moved");
      }
    }
  }

  void checkStats(const GcStats &S, const ModelGcStats &P) {
    const struct {
      const char *Name;
      uint64_t Model, Real;
    } Rows[] = {
        {"ObjectsCopied", P.ObjectsCopied, S.ObjectsCopied},
        {"BytesCopied", P.BytesCopied, S.BytesCopied},
        {"ObjectsPromoted", P.ObjectsPromoted, S.ObjectsPromoted},
        {"BytesInFromSpace", P.BytesInFromSpace, S.BytesInFromSpace},
        {"ProtectedEntriesVisited", P.ProtectedEntriesVisited,
         S.ProtectedEntriesVisited},
        {"GuardianObjectsSaved", P.GuardianObjectsSaved,
         S.GuardianObjectsSaved},
        {"ProtectedEntriesKept", P.ProtectedEntriesKept,
         S.ProtectedEntriesKept},
        {"GuardianEntriesDropped", P.GuardianEntriesDropped,
         S.GuardianEntriesDropped},
        {"GuardianLoopIterations", P.GuardianLoopIterations,
         S.GuardianLoopIterations},
        {"WeakPointersBroken", P.WeakPointersBroken,
         S.WeakPointersBroken},
        {"SymbolsDropped", P.SymbolsDropped, S.SymbolsDropped},
    };
    for (const auto &R : Rows)
      if (R.Model != R.Real)
        diverge(std::string("stats.") + R.Name + ": model " +
                std::to_string(R.Model) + ", heap " +
                std::to_string(R.Real));
  }

  void checkScopeStats(const ScopeCloseStats &S,
                       const ModelScopeStats &P) {
    const struct {
      const char *Name;
      uint64_t Model, Real;
    } Rows[] = {
        {"ObjectsEvacuated", P.ObjectsEvacuated, S.ObjectsEvacuated},
        {"BytesEvacuated", P.BytesEvacuated, S.BytesEvacuated},
        {"BytesInScope", P.BytesInScope, S.BytesInScope},
        {"ProtectedEntriesVisited", P.ProtectedEntriesVisited,
         S.ProtectedEntriesVisited},
        {"GuardianObjectsSaved", P.GuardianObjectsSaved,
         S.GuardianObjectsSaved},
        {"ProtectedEntriesKept", P.ProtectedEntriesKept,
         S.ProtectedEntriesKept},
        {"GuardianEntriesDropped", P.GuardianEntriesDropped,
         S.GuardianEntriesDropped},
        {"GuardianLoopIterations", P.GuardianLoopIterations,
         S.GuardianLoopIterations},
        {"WeakPointersBroken", P.WeakPointersBroken,
         S.WeakPointersBroken},
        {"SymbolsDropped", P.SymbolsDropped, S.SymbolsDropped},
    };
    for (const auto &R : Rows)
      if (R.Model != R.Real)
        diverge(std::string("scope-stats.") + R.Name + ": model " +
                std::to_string(R.Model) + ", heap " +
                std::to_string(R.Real));
  }

  /// Full value-graph isomorphism from every root the harness holds: a
  /// bijection between shadow ids and heap addresses with per-object
  /// structure checks. Covers weak-pair break sets (both directions),
  /// guardian tconc contents and order, and eq?-identity.
  void checkGraph() {
    std::unordered_map<ObjId, uintptr_t> Fwd;
    std::unordered_map<uintptr_t, ObjId> Bwd;
    std::vector<ObjId> Work;

    auto edge = [&](const SVal &MV, Value RV, const char *Where) {
      if (!MV.IsId) {
        if (RV.bits() != MV.Imm)
          diverge(std::string("walk at ") + Where +
                  ": immediate mismatch");
        return;
      }
      if (!RV.isHeapPointer())
        diverge(std::string("walk at ") + Where +
                ": model object, heap non-pointer");
      auto F = Fwd.find(MV.Id);
      if (F != Fwd.end()) {
        if (F->second != RV.bits())
          diverge(std::string("walk at ") + Where +
                  ": identity split (one model object, two heap "
                  "addresses)");
        return;
      }
      auto B = Bwd.find(RV.bits());
      if (B != Bwd.end())
        diverge(std::string("walk at ") + Where +
                ": identity merge (two model objects, one heap "
                "address)");
      Fwd.emplace(MV.Id, RV.bits());
      Bwd.emplace(RV.bits(), MV.Id);
      Work.push_back(MV.Id);
    };

    for (size_t I = 0; I != NumSlots; ++I)
      if (SlotId[I] != NoObj)
        edge(SVal::object(SlotId[I]), Value::fromBits(SlotBits[I]),
             "slot");
    if (RootStackReal.size() != M.RootStack.size())
      diverge("root stack size mismatch");
    for (size_t I = 0; I != M.RootStack.size(); ++I)
      edge(M.RootStack[I], RootStackReal[I], "root-stack");
    if (ScratchReal.size() != M.Scratch.size())
      diverge("scratch root size mismatch");
    for (size_t I = 0; I != M.Scratch.size(); ++I)
      edge(M.Scratch[I], ScratchReal[I], "scratch");

    while (!Work.empty()) {
      const ObjId Id = Work.back();
      Work.pop_back();
      checkObject(Id, Value::fromBits(Fwd[Id]), edge);
    }
  }

  template <typename EdgeFn>
  void checkObject(ObjId Id, Value RV, EdgeFn &edge) {
    const SObj &O = M.obj(Id);
    if (!O.Alive)
      diverge("walk reached a model-dead object");
    if (H.generationOf(RV) != O.Gen)
      diverge("generation mismatch: model " + std::to_string(O.Gen) +
              ", heap " + std::to_string(H.generationOf(RV)));
    if (H.scopeDepthOf(RV) != O.Scope)
      diverge("scope depth mismatch: model " + std::to_string(O.Scope) +
              ", heap " + std::to_string(H.scopeDepthOf(RV)));
    switch (O.Kind) {
    case SKind::Pair:
      if (!RV.isPair() || H.isWeakPair(RV))
        diverge("expected ordinary pair");
      edge(O.Fields[0], pairCar(RV), "car");
      edge(O.Fields[1], pairCdr(RV), "cdr");
      return;
    case SKind::WeakPair:
      if (!RV.isPair() || !H.isWeakPair(RV))
        diverge("expected weak pair");
      edge(O.Fields[0], pairCar(RV), "weak-car");
      edge(O.Fields[1], pairCdr(RV), "weak-cdr");
      return;
    case SKind::Vector:
      if (!isVector(RV) || objectLength(RV) != O.Length)
        diverge("expected vector of " + std::to_string(O.Length));
      for (size_t I = 0; I != O.Length; ++I)
        edge(O.Fields[I], objectField(RV, I), "vector-slot");
      return;
    case SKind::Record:
      if (!isRecord(RV) || objectLength(RV) != O.Length)
        diverge("expected record of " + std::to_string(O.Length));
      for (size_t I = 0; I != O.Length; ++I)
        edge(O.Fields[I], objectField(RV, I), "record-slot");
      return;
    case SKind::Box:
      if (!isBox(RV))
        diverge("expected box");
      edge(O.Fields[0], objectField(RV, 0), "box-slot");
      return;
    case SKind::Symbol:
      if (!isSymbol(RV))
        diverge("expected symbol");
      edge(O.Fields[SymName], objectField(RV, SymName), "sym-name");
      edge(O.Fields[SymHash], objectField(RV, SymHash), "sym-hash");
      edge(O.Fields[SymPlist], objectField(RV, SymPlist), "sym-plist");
      return;
    case SKind::String:
      if (!isString(RV) || objectLength(RV) != O.Length)
        diverge("expected string of " + std::to_string(O.Length));
      if (O.Length != 0 &&
          std::memcmp(stringData(RV), O.Data.data(), O.Length) != 0)
        diverge("string contents mismatch");
      return;
    case SKind::Bytevector: {
      if (!isBytevector(RV) || objectLength(RV) != O.Length)
        diverge("expected bytevector of " + std::to_string(O.Length));
      const uint8_t *Bytes = bytevectorData(RV);
      for (size_t I = 0; I != O.Length; ++I)
        if (Bytes[I] != 0)
          diverge("bytevector contents mismatch");
      return;
    }
    case SKind::Flonum: {
      if (!isFlonum(RV))
        diverge("expected flonum");
      uint64_t Bits;
      std::memcpy(&Bits, RV.objectHeader() + 1, sizeof(Bits));
      if (Bits != O.FloBits)
        diverge("flonum payload mismatch");
      return;
    }
    }
    diverge("bad shadow kind");
  }

  void checkCensus() {
    const HeapCensus C = H.census();
    const ModelCensus E = M.censusExpect();
    for (unsigned G = 0; G != M.Generations; ++G)
      for (unsigned Sp = 0; Sp != NumSpaces; ++Sp) {
        const HeapCensus::Cell &Cell = C.Cells[G][Sp];
        if (Cell.ObjectCount != E.ObjectCount[G][Sp] ||
            Cell.UsedBytes != E.UsedBytes[G][Sp])
          diverge("census cell gen " + std::to_string(G) + " space " +
                  std::to_string(Sp) + ": model " +
                  std::to_string(E.ObjectCount[G][Sp]) + " objs/" +
                  std::to_string(E.UsedBytes[G][Sp]) + " bytes, heap " +
                  std::to_string(Cell.ObjectCount) + " objs/" +
                  std::to_string(Cell.UsedBytes) + " bytes");
      }
    for (unsigned K = 0; K != NumCensusKinds; ++K)
      if (C.KindCounts[K] != E.KindCounts[K] ||
          C.KindBytes[K] != E.KindBytes[K])
        diverge(std::string("census kind ") +
                censusKindName(static_cast<CensusKind>(K)) + ": model " +
                std::to_string(E.KindCounts[K]) + "/" +
                std::to_string(E.KindBytes[K]) + ", heap " +
                std::to_string(C.KindCounts[K]) + "/" +
                std::to_string(C.KindBytes[K]));
  }

  //===------------------------------------------------------------------===//
  // Op interpretation.
  //===------------------------------------------------------------------===//

  template <typename Pred> int findSlot(uint32_t Start, Pred P) {
    for (size_t K = 0; K != NumSlots; ++K) {
      const size_t I = (Start + K) % NumSlots;
      if (SlotId[I] != NoObj && P(M.obj(SlotId[I])))
        return static_cast<int>(I);
    }
    return -1;
  }

  /// Resolves an operand word to a (model, real) value pair: odd words
  /// are immediates from a small palette, even words scan the slots.
  std::pair<SVal, Value> valueOperand(uint32_t X) {
    if (X & 1) {
      Value V;
      switch ((X >> 1) % 5) {
      case 0:
        V = Value::fixnum(static_cast<intptr_t>((X >> 3) % 100000));
        break;
      case 1:
        V = Value::falseV();
        break;
      case 2:
        V = Value::nil();
        break;
      case 3:
        V = Value::trueV();
        break;
      default:
        V = Value::character('a' + (X >> 3) % 26);
        break;
      }
      return {SVal::immediate(V), V};
    }
    const int S = findSlot(X >> 1, [](const SObj &) { return true; });
    if (S < 0) {
      const Value V = Value::fixnum(7);
      return {SVal::immediate(V), V};
    }
    return {SVal::object(SlotId[S]), Value::fromBits(SlotBits[S])};
  }

  /// Roots heap-pointer operands on both sides for the duration of one
  /// allocating op (mirroring the Roots the real entry points create).
  void pushOperand(const std::pair<SVal, Value> &V) {
    if (!V.first.IsId)
      return;
    ScratchReal.push_back(V.second);
    M.Scratch.push_back(V.first);
  }
  void clearOperands() {
    ScratchReal.clear();
    M.Scratch.clear();
  }

  void storeResult(uint32_t Dst, ObjId Id, Value RV) {
    const size_t I = Dst % NumSlots;
    SlotId[I] = Id;
    SlotBits[I] = RV.bits();
  }

  /// eq?-consistency of a (model id, heap value) pairing against every
  /// slot.
  void checkIdentity(ObjId Id, Value RV) {
    for (size_t I = 0; I != NumSlots; ++I) {
      if (SlotId[I] == NoObj)
        continue;
      if (SlotId[I] == Id && SlotBits[I] != RV.bits())
        diverge("eq? violation: one model object at two heap addresses");
      if (SlotId[I] != Id && SlotBits[I] == RV.bits())
        diverge("eq? violation: two model objects at one heap address");
    }
  }

  void applyOp(const TraceOp &O) {
    switch (static_cast<Op>(O.Code)) {
    case Op::Cons:
    case Op::WeakCons: {
      const bool Weak = static_cast<Op>(O.Code) == Op::WeakCons;
      auto Car = valueOperand(O.A);
      auto Cdr = valueOperand(O.B);
      pushOperand(Car);
      pushOperand(Cdr);
      const Value RV = Weak ? H.weakCons(Car.second, Cdr.second)
                            : H.cons(Car.second, Cdr.second);
      clearOperands();
      storeResult(O.C,
                  Weak ? M.weakCons(Car.first, Cdr.first)
                       : M.cons(Car.first, Cdr.first),
                  RV);
      return;
    }
    case Op::MakeVector:
    case Op::MakeLargeVector: {
      const uint32_t Len = static_cast<Op>(O.Code) == Op::MakeVector
                               ? O.A % 8
                               : 600 + O.A % 900;
      auto Fill = valueOperand(O.B);
      pushOperand(Fill);
      const Value RV = H.makeVector(Len, Fill.second);
      clearOperands();
      storeResult(O.C, M.makeVector(Len, Fill.first), RV);
      return;
    }
    case Op::MakeString: {
      std::string Data;
      const uint32_t Len = O.A % 48;
      for (uint32_t I = 0; I != Len; ++I)
        Data.push_back(
            static_cast<char>('a' + (O.A + I * 7 + O.B) % 26));
      const Value RV = H.makeString(Data);
      storeResult(O.C, M.makeString(Data), RV);
      return;
    }
    case Op::MakeBytevector: {
      const uint32_t Len = O.A % 64;
      const Value RV = H.makeBytevector(Len);
      storeResult(O.C, M.makeBytevector(Len), RV);
      return;
    }
    case Op::MakeFlonum: {
      const double D =
          static_cast<double>(O.A) * 0.4375 - static_cast<double>(O.B % 977);
      uint64_t Bits;
      std::memcpy(&Bits, &D, sizeof(Bits));
      const Value RV = H.makeFlonum(D);
      storeResult(O.C, M.makeFlonum(Bits), RV);
      return;
    }
    case Op::MakeBox: {
      auto V = valueOperand(O.A);
      pushOperand(V);
      const Value RV = H.makeBox(V.second);
      clearOperands();
      storeResult(O.C, M.makeBox(V.first), RV);
      return;
    }
    case Op::MakeRecord: {
      const uint32_t Fields = 1 + (O.A & 3);
      auto Tag = valueOperand(O.A >> 2);
      auto Fill = valueOperand(O.B);
      pushOperand(Tag);
      pushOperand(Fill);
      const Value RV = H.makeRecord(Tag.second, Fields, Fill.second);
      clearOperands();
      storeResult(O.C, M.makeRecord(Tag.first, Fields, Fill.first), RV);
      return;
    }
    case Op::Intern: {
      const std::string Name = "sym-" + std::to_string(O.A % 12);
      const Value RV = H.intern(Name);
      const SVal MV = M.intern(Name);
      if (!isSymbol(RV))
        diverge("intern returned a non-symbol");
      checkIdentity(MV.Id, RV);
      storeResult(O.C, MV.Id, RV);
      return;
    }
    case Op::SetCar:
    case Op::SetCdr: {
      const bool IsCar = static_cast<Op>(O.Code) == Op::SetCar;
      const int S = findSlot(O.A, [](const SObj &X) {
        return (X.Kind == SKind::Pair || X.Kind == SKind::WeakPair) &&
               !X.TconcPart;
      });
      if (S < 0)
        return;
      auto V = valueOperand(O.B);
      if (IsCar)
        H.setCar(Value::fromBits(SlotBits[S]), V.second);
      else
        H.setCdr(Value::fromBits(SlotBits[S]), V.second);
      M.setField(SlotId[S], IsCar ? 0 : 1, V.first);
      return;
    }
    case Op::VectorSet: {
      const int S = findSlot(O.A, [](const SObj &X) {
        return X.Kind == SKind::Vector && X.Length >= 1;
      });
      if (S < 0)
        return;
      const uint32_t Index = O.B % M.obj(SlotId[S]).Length;
      auto V = valueOperand(O.C);
      H.vectorSet(Value::fromBits(SlotBits[S]), Index, V.second);
      M.setField(SlotId[S], Index, V.first);
      return;
    }
    case Op::BoxSet: {
      const int S = findSlot(
          O.A, [](const SObj &X) { return X.Kind == SKind::Box; });
      if (S < 0)
        return;
      auto V = valueOperand(O.B);
      H.boxSet(Value::fromBits(SlotBits[S]), V.second);
      M.setField(SlotId[S], 0, V.first);
      return;
    }
    case Op::RecordSet: {
      const int S = findSlot(
          O.A, [](const SObj &X) { return X.Kind == SKind::Record; });
      if (S < 0)
        return;
      const uint32_t Index = O.B % M.obj(SlotId[S]).Length;
      auto V = valueOperand(O.C);
      H.recordSet(Value::fromBits(SlotBits[S]), Index, V.second);
      M.setField(SlotId[S], Index, V.first);
      return;
    }
    case Op::RootPush: {
      const int S = findSlot(O.A, [](const SObj &) { return true; });
      if (S < 0 || RootStackReal.size() >= RootStackMax)
        return;
      RootStackReal.push_back(Value::fromBits(SlotBits[S]));
      M.RootStack.push_back(SVal::object(SlotId[S]));
      return;
    }
    case Op::RootPop:
      if (!RootStackReal.empty()) {
        RootStackReal.pop_back();
        M.RootStack.pop_back();
      }
      return;
    case Op::DropSlot: {
      const size_t I = O.A % NumSlots;
      SlotId[I] = NoObj;
      SlotBits[I] = 0;
      return;
    }
    case Op::DupSlot: {
      const int S = findSlot(O.A, [](const SObj &) { return true; });
      if (S < 0)
        return;
      const size_t Dst = O.C % NumSlots;
      SlotId[Dst] = SlotId[S];
      SlotBits[Dst] = SlotBits[S];
      return;
    }
    case Op::GuardianNew: {
      const Value RV = H.makeGuardianTconc();
      storeResult(O.C, M.makeGuardianTconc(), RV);
      return;
    }
    case Op::Guard:
    case Op::GuardWithAgent: {
      const int TS = findSlot(
          O.A, [](const SObj &X) { return X.TconcHeader; });
      const int OS = findSlot(O.B, [](const SObj &) { return true; });
      if (TS < 0 || OS < 0)
        return;
      const SVal ObjV = SVal::object(SlotId[OS]);
      if (static_cast<Op>(O.Code) == Op::Guard) {
        H.guardianProtect(Value::fromBits(SlotBits[TS]),
                          Value::fromBits(SlotBits[OS]));
        M.guardianProtect(SlotId[TS], ObjV, ObjV);
      } else {
        auto Agent = valueOperand(O.C);
        H.guardianProtectWithAgent(Value::fromBits(SlotBits[TS]),
                                   Value::fromBits(SlotBits[OS]),
                                   Agent.second);
        M.guardianProtect(SlotId[TS], ObjV, Agent.first);
      }
      return;
    }
    case Op::Retrieve: {
      const int TS = findSlot(
          O.A, [](const SObj &X) { return X.TconcHeader; });
      if (TS < 0)
        return;
      retrieveOnce(TS, /*StoreDst=*/true, O.C);
      return;
    }
    case Op::Drain: {
      const int TS = findSlot(
          O.A, [](const SObj &X) { return X.TconcHeader; });
      if (TS < 0)
        return;
      for (unsigned Guard = 0; Guard != 20000; ++Guard)
        if (!retrieveOnce(TS, /*StoreDst=*/false, 0))
          return;
      diverge("drain did not terminate");
    }
    case Op::Collect:
      H.collect(O.A % M.Generations);
      return;
    case Op::ScopeOpen:
      if (H.scopeDepth() >= ScopeNestCap)
        return;
      H.openScope();
      M.openScope();
      return;
    case Op::ScopeClose:
      if (H.scopeDepth() == 0)
        return;
      // The close hook runs the model close and the full cross-check.
      H.closeScope();
      return;
    case Op::AllocInScope: {
      // A pair chain in the current extent (wherever that is — the op
      // also runs unscoped, which keeps op deletion sound). Most links
      // become garbage the moment the slot is dropped: the request-
      // local churn the scoped design reclaims without tracing. The
      // running head lives in the scratch roots so stress collections
      // or scope closes between links move its bits on both sides.
      const uint32_t Len = 1 + O.A % 4;
      auto Tail = valueOperand(O.B);
      ScratchReal.push_back(Tail.second);
      M.Scratch.push_back(Tail.first);
      SVal MHead = Tail.first;
      for (uint32_t I = 0; I != Len; ++I) {
        const Value Car = Value::fixnum((O.B >> 2) % 4096 + I);
        const Value RHead = H.cons(Car, ScratchReal.back());
        const ObjId Id = M.cons(SVal::immediate(Car), MHead);
        ScratchReal[ScratchReal.size() - 1] = RHead;
        MHead = SVal::object(Id);
        M.Scratch[M.Scratch.size() - 1] = MHead;
      }
      const Value RHead = ScratchReal.back();
      clearOperands();
      storeResult(O.C, MHead.Id, RHead);
      return;
    }
    case Op::DonateSend: {
      // Snapshot-then-donate (DESIGN.md §14): the model records the
      // graph's structure at the instant the heap copies it out. The
      // handle parks in flight; a later receive adopts it, a later
      // drop frees it. donateGraph never safepoints (it allocates only
      // in the exchange arena), so the operand needs no rooting.
      if (InFlight.size() >= MaxInFlight)
        return;
      auto V = valueOperand(O.A);
      InFlightDonation D;
      D.Snap = M.snapshotGraph(V.first);
      D.G = H.donateGraph(V.second);
      // The copy-out bump-allocates exactly the words the snapshot
      // predicts — the strongest size oracle available pre-adoption.
      if (D.G.Bytes != D.Snap.Words * sizeof(uintptr_t))
        diverge("donate-send: heap copied " + std::to_string(D.G.Bytes) +
                " bytes, model predicts " +
                std::to_string(D.Snap.Words * sizeof(uintptr_t)));
      InFlight.push_back(std::move(D));
      auditDonations();
      return;
    }
    case Op::DonateReceive: {
      if (InFlight.empty())
        return;
      const size_t Pick = O.A % InFlight.size();
      // Pre-intern every fixup name on both sides, rooted in scratch,
      // so the heap and model agree on symbol identity before the
      // adopt replays the snapshot. Each H.intern may safepoint (the
      // graph is safely parked in flight).
      std::vector<std::string> Names;
      {
        std::unordered_set<std::string> Seen;
        auto note = [&](const ShadowModel::SnapVal &S) {
          if (S.Kind == ShadowModel::SnapVal::K::Symbol &&
              Seen.insert(S.Name).second)
            Names.push_back(S.Name);
        };
        const ShadowModel::GraphSnapshot &Snap = InFlight[Pick].Snap;
        note(Snap.Root);
        for (const ShadowModel::SnapNode &N : Snap.Nodes)
          for (const ShadowModel::SnapVal &F : N.Fields)
            note(F);
      }
      for (const std::string &Name : Names) {
        const Value RSym = H.intern(Name);
        const SVal MSym = M.intern(Name);
        checkIdentity(MSym.Id, RSym);
        ScratchReal.push_back(RSym);
        M.Scratch.push_back(MSym);
      }
      // Adopt IN PLACE, erase after: adoptDonatedGraph's phase 1 may
      // still collect (intern polls the safepoint even for a pure
      // lookup, which under GENGC_STRESS is a collection), and the
      // mid-adopt audit must find the handle owning its segments.
      // Phase 2 empties the handle's runs in the same breath as it
      // appends them to the heap's adopted space, so the books stay
      // balanced through the handoff.
      const Value RV = H.adoptDonatedGraph(InFlight[Pick].G);
      const ShadowModel::GraphSnapshot Snap =
          std::move(InFlight[Pick].Snap);
      InFlight.erase(InFlight.begin() +
                     static_cast<ptrdiff_t>(Pick));
      const SVal MV = M.adoptGraph(Snap);
      clearOperands();
      if (MV.IsId) {
        if (!RV.isHeapPointer())
          diverge("donate-receive: model object, heap non-pointer");
        checkIdentity(MV.Id, RV);
        storeResult(O.C, MV.Id, RV);
      } else if (RV.bits() != MV.Imm) {
        diverge("donate-receive: immediate mismatch");
      }
      auditDonations();
      return;
    }
    case Op::DonateDrop: {
      if (InFlight.empty())
        return;
      const size_t Pick = O.A % InFlight.size();
      // The handle's destructor frees the donated segments back to the
      // exchange arena — unless the injected fault leaks them, which
      // the audit turns into a divergence on the spot.
      InFlight.erase(InFlight.begin() + static_cast<ptrdiff_t>(Pick));
      auditDonations();
      return;
    }
    }
    diverge("unknown opcode " + std::to_string(O.Code));
  }

  /// One Figure 4 retrieve on both sides; returns false once the queue
  /// reports empty (checking that both sides agree it is).
  bool retrieveOnce(int TS, bool StoreDst, uint32_t Dst) {
    const ObjId Tid = SlotId[TS];
    const Value TconcV = Value::fromBits(SlotBits[TS]);
    const bool ModelPending = M.guardianHasPending(Tid);
    if (H.guardianHasPending(TconcV) != ModelPending)
      diverge("guardian pending? mismatch");
    const Value RV = H.guardianRetrieve(TconcV);
    const SVal MV = M.guardianRetrieve(Tid);
    if (!MV.IsId) {
      if (RV.bits() != MV.Imm)
        diverge("retrieve: immediate mismatch");
      return ModelPending;
    }
    if (!RV.isHeapPointer())
      diverge("retrieve: model object, heap non-pointer");
    checkIdentity(MV.Id, RV);
    if (StoreDst)
      storeResult(Dst, MV.Id, RV);
    return true;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Public entry points.
//===----------------------------------------------------------------------===//

RunResult gengc::gcfuzz::runTrace(const Trace &T, const HeapConfig &Cfg) {
  Session S(Cfg);
  return S.run(T);
}

Trace gengc::gcfuzz::shrinkTrace(const Trace &T, const HeapConfig &Cfg,
                                 size_t MaxRuns) {
  size_t Runs = 0;
  auto Fails = [&](const Trace &Cand) {
    if (Runs >= MaxRuns)
      return false;
    ++Runs;
    return runTrace(Cand, Cfg).Diverged;
  };
  Trace Best = T;
  if (!Fails(Best))
    return Best; // Not reproducible under this config; nothing to do.
  size_t Chunk = std::max<size_t>(1, Best.Ops.size() / 2);
  while (true) {
    bool Shrunk = false;
    for (size_t Start = 0; Start < Best.Ops.size();) {
      Trace Cand = Best;
      const size_t End = std::min(Best.Ops.size(), Start + Chunk);
      Cand.Ops.erase(Cand.Ops.begin() + Start, Cand.Ops.begin() + End);
      if (!Cand.Ops.empty() && Fails(Cand)) {
        Best = std::move(Cand);
        Shrunk = true;
        // Re-test the same offset: new ops shifted into the window.
      } else {
        Start = End;
      }
    }
    if (!Shrunk) {
      if (Chunk == 1)
        break;
      Chunk = std::max<size_t>(1, Chunk / 2);
    }
  }
  return Best;
}

std::vector<FuzzConfig> gengc::gcfuzz::standardConfigs() {
  std::vector<FuzzConfig> Configs;
  const size_t Arena = 16u * 1024 * 1024;

  HeapConfig Paper;
  Paper.ArenaBytes = Arena;
  Paper.Generations = 4;
  Paper.TenureCopies = 1;
  Paper.CollectionRadix = 4;
  Paper.Gen0CollectBytes = 6 * 1024;
  Configs.push_back({"paper", Paper});

  HeapConfig Tenure;
  Tenure.ArenaBytes = Arena;
  Tenure.Generations = 3;
  Tenure.TenureCopies = 3;
  Tenure.CollectionRadix = 2;
  Tenure.Gen0CollectBytes = 6 * 1024;
  Configs.push_back({"tenure3", Tenure});

  HeapConfig TwoGen;
  TwoGen.ArenaBytes = Arena;
  TwoGen.Generations = 2;
  TwoGen.TenureCopies = 2;
  TwoGen.CollectionRadix = 3;
  TwoGen.Gen0CollectBytes = 8 * 1024;
  TwoGen.WeakSymbolTable = false;
  Configs.push_back({"twogen-strongsym", TwoGen});

  HeapConfig Single;
  Single.ArenaBytes = Arena;
  Single.Generations = 1;
  Single.TenureCopies = 1;
  Single.Gen0CollectBytes = 10 * 1024;
  Configs.push_back({"single", Single});

  HeapConfig Stress;
  Stress.ArenaBytes = Arena;
  Stress.Generations = 4;
  Stress.TenureCopies = 2;
  Stress.CollectionRadix = 4;
  Stress.Gen0CollectBytes = 6 * 1024;
  Stress.StressGC = true;
  Stress.StressInterval = 7;
  Stress.PoisonFromSpace = true;
  Configs.push_back({"stress", Stress});

  return Configs;
}

bool gengc::gcfuzz::findConfig(const std::string &Name, FuzzConfig &Out) {
  for (FuzzConfig &C : standardConfigs())
    if (C.Name == Name) {
      Out = C;
      return true;
    }
  return false;
}

//===- testing/ShadowModel.cpp - Non-moving reachability oracle ----------===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "testing/ShadowModel.h"

#include <algorithm>

#include "support/Assert.h"

using namespace gengc;
using namespace gengc::gcfuzz;

//===----------------------------------------------------------------------===//
// Allocation mirror.
//===----------------------------------------------------------------------===//

ObjId ShadowModel::newObject(SKind Kind) {
  SObj O;
  O.Kind = Kind;
  // Mirrors Heap::allocateRaw: while a scope is open every birth lands
  // in the innermost scope's private nursery.
  O.Scope = static_cast<uint8_t>(ScopeDepth);
  Objects.push_back(std::move(O));
  return static_cast<ObjId>(Objects.size() - 1);
}

ObjId ShadowModel::cons(SVal Car, SVal Cdr) {
  ObjId Id = newObject(SKind::Pair);
  Objects[Id].Fields = {Car, Cdr};
  return Id;
}

ObjId ShadowModel::weakCons(SVal Car, SVal Cdr) {
  ObjId Id = newObject(SKind::WeakPair);
  Objects[Id].Fields = {Car, Cdr};
  return Id;
}

ObjId ShadowModel::makeVector(uint32_t Length, SVal Fill) {
  ObjId Id = newObject(SKind::Vector);
  Objects[Id].Length = Length;
  Objects[Id].Fields.assign(Length, Fill);
  return Id;
}

ObjId ShadowModel::makeString(const std::string &Data) {
  ObjId Id = newObject(SKind::String);
  Objects[Id].Length = static_cast<uint32_t>(Data.size());
  Objects[Id].Data = Data;
  return Id;
}

ObjId ShadowModel::makeBytevector(uint32_t Length) {
  ObjId Id = newObject(SKind::Bytevector);
  Objects[Id].Length = Length;
  return Id;
}

ObjId ShadowModel::makeFlonum(uint64_t FloBits) {
  ObjId Id = newObject(SKind::Flonum);
  Objects[Id].FloBits = FloBits;
  return Id;
}

ObjId ShadowModel::makeBox(SVal V) {
  ObjId Id = newObject(SKind::Box);
  Objects[Id].Fields = {V};
  return Id;
}

ObjId ShadowModel::makeRecord(SVal Tag, uint32_t FieldCount, SVal Fill) {
  GENGC_ASSERT(FieldCount >= 1, "records have at least a tag slot");
  ObjId Id = newObject(SKind::Record);
  Objects[Id].Length = FieldCount;
  Objects[Id].Fields.assign(FieldCount, Fill);
  Objects[Id].Fields[0] = Tag;
  return Id;
}

SVal ShadowModel::intern(const std::string &Name) {
  auto It = Symbols.find(Name);
  if (It != Symbols.end())
    return SVal::object(It->second);
  // Mirrors Heap::intern: fresh string first, then the symbol whose
  // SymName field references it; SymHash is fixnum 0, SymPlist is '().
  ObjId Str = makeString(Name);
  ObjId Sym = newObject(SKind::Symbol);
  Objects[Sym].Fields = {SVal::object(Str),
                         SVal::immediate(Value::fixnum(0)),
                         SVal::immediate(Value::nil())};
  Symbols.emplace(Name, Sym);
  return SVal::object(Sym);
}

ObjId ShadowModel::makeGuardianTconc() {
  ObjId Z = cons(SVal::immediate(Value::falseV()),
                 SVal::immediate(Value::nil()));
  Objects[Z].TconcPart = true;
  ObjId Header = cons(SVal::object(Z), SVal::object(Z));
  Objects[Header].TconcPart = true;
  Objects[Header].TconcHeader = true;
  return Header;
}

void ShadowModel::setField(ObjId Obj, uint32_t Index, SVal V) {
  GENGC_ASSERT(Index < Objects[Obj].Fields.size(),
               "shadow field index out of range");
  Objects[Obj].Fields[Index] = V;
}

//===----------------------------------------------------------------------===//
// Guardians (mutator side).
//===----------------------------------------------------------------------===//

unsigned ShadowModel::scopeOf(const SVal &V) const {
  return V.IsId ? Objects[V.Id].Scope : 0;
}

void ShadowModel::guardianProtect(ObjId Tconc, SVal Obj, SVal Agent) {
  const SEntry E{Obj, SVal::object(Tconc), Agent};
  unsigned Deepest = 0;
  for (const SVal *V : {&E.Obj, &E.Tconc, &E.Agent})
    Deepest = std::max(Deepest, scopeOf(*V));
  if (Deepest != 0)
    ScopeProtected[Deepest - 1].push_back(E);
  else
    Protected[0].push_back(E);
}

SVal ShadowModel::guardianRetrieve(ObjId Tconc) {
  SObj &Header = Objects[Tconc];
  if (Header.Fields[0] == Header.Fields[1])
    return SVal::immediate(Value::falseV());
  // Figure 4: Y = car(car(T)); car(T) = cdr(car(T)); clear the cell.
  ObjId X = Header.Fields[0].Id;
  SVal Y = Objects[X].Fields[0];
  Header.Fields[0] = Objects[X].Fields[1];
  Objects[X].Fields[0] = SVal::immediate(Value::falseV());
  Objects[X].Fields[1] = SVal::immediate(Value::falseV());
  return Y;
}

bool ShadowModel::guardianHasPending(ObjId Tconc) const {
  const SObj &Header = Objects[Tconc];
  return Header.Fields[0] != Header.Fields[1];
}

//===----------------------------------------------------------------------===//
// Collection.
//===----------------------------------------------------------------------===//

size_t ShadowModel::allocWords(const SObj &O) {
  switch (O.Kind) {
  case SKind::Pair:
  case SKind::WeakPair:
    return 2;
  case SKind::Vector:
  case SKind::Record:
    return std::max<size_t>(2, 1 + O.Length);
  case SKind::String:
  case SKind::Bytevector:
    return std::max<size_t>(
        2, 1 + (O.Length + sizeof(uintptr_t) - 1) / sizeof(uintptr_t));
  case SKind::Symbol:
    return 4;
  case SKind::Box:
  case SKind::Flonum:
    return 2;
  }
  GENGC_UNREACHABLE("bad shadow kind in allocWords");
}

namespace {

/// Mirrors Collector::targetFor.
void modelTargetFor(unsigned Gen, unsigned Age, unsigned T,
                    unsigned TenureCopies, unsigned &NewGen,
                    unsigned &NewAge) {
  if (Age + 1 >= TenureCopies) {
    NewGen = T;
    NewAge = 0;
  } else {
    NewGen = Gen;
    NewAge = Age + 1;
  }
}

} // namespace

ShadowModel::CollectOutcome
ShadowModel::collect(unsigned RequestedGeneration) {
  CollectOutcome Out;
  const unsigned Oldest = Generations - 1;
  const unsigned G = std::min(RequestedGeneration, Oldest);
  const unsigned T = std::min(G + 1, Oldest);
  Out.Collected = G;
  Out.Target = T;
  const size_t PreCount = Objects.size();
  Out.PreCount = PreCount;
  Out.Copied.assign(PreCount, 0);
  ModelGcStats &St = Out.Stats;

  for (size_t Id = 0; Id != PreCount; ++Id) {
    const SObj &O = Objects[Id];
    if (O.Alive && O.Scope == 0 && O.Gen <= G)
      St.BytesInFromSpace += allocWords(O) * sizeof(uintptr_t);
  }

  // "Copied" is the model's F set: live objects in collected
  // generations. Ids born during the collection (guardian tconc cells
  // appended below) count as trivially live; old-generation objects and
  // open-scope residents are never from-space — scope nurseries are
  // untouched by collections and reclaimed only at closeScope().
  std::vector<ObjId> Work;
  auto isFwd = [&](const SVal &V) {
    if (!V.IsId)
      return true;
    if (V.Id >= PreCount)
      return true;
    return Objects[V.Id].Scope != 0 || Objects[V.Id].Gen > G ||
           Out.Copied[V.Id] != 0;
  };
  auto forwardObj = [&](ObjId Id) {
    if (Id >= PreCount)
      return;
    SObj &O = Objects[Id];
    GENGC_ASSERT(O.Alive, "model traversal reached a reclaimed object");
    if (O.Scope != 0 || O.Gen > G || Out.Copied[Id])
      return;
    Out.Copied[Id] = 1;
    ++St.ObjectsCopied;
    St.BytesCopied += allocWords(O) * sizeof(uintptr_t);
    Work.push_back(Id);
  };
  auto forwardVal = [&](const SVal &V) {
    if (V.IsId)
      forwardObj(V.Id);
  };
  // Traverses the strong edges of one object (a weak pair's car is not
  // an edge).
  auto scanObj = [&](const SObj &O) {
    if (O.Kind == SKind::WeakPair) {
      forwardVal(O.Fields[1]);
      return;
    }
    for (const SVal &F : O.Fields)
      forwardVal(F);
  };
  // Cheney closure over everything discovered so far.
  auto sweep = [&]() {
    while (!Work.empty()) {
      ObjId Id = Work.back();
      Work.pop_back();
      scanObj(Objects[Id]);
    }
  };

  // Roots: the runner's root stack and per-op scratch operands, the
  // symbol table when it is strong, and — the generational contract —
  // every live object of an uncollected generation, whether or not it
  // is itself reachable. That last clause models the remembered sets'
  // conservatism exactly: old floating garbage retains its young
  // children. Open-scope residents are likewise uncollected roots
  // (Collector::scanOpenScopes rescans scope nurseries wholesale).
  for (const SVal &V : RootStack)
    forwardVal(V);
  for (const SVal &V : Scratch)
    forwardVal(V);
  if (!WeakSymbolTable)
    for (const auto &KV : Symbols)
      forwardObj(KV.second);
  for (size_t Id = 0; Id != PreCount; ++Id) {
    const SObj &O = Objects[Id];
    if (O.Alive && (O.Gen > G || O.Scope != 0))
      scanObj(O);
  }
  sweep();

  // Guardians: the Section 4 algorithm, in the collector's exact
  // order. First block — classify entries of protected[0..G];
  // distinct Section 5 agents are forwarded inline during
  // classification (without closure until the block completes).
  std::vector<SEntry> PendHold, PendFinal;
  bool ForwardedAnAgent = false;
  auto Classify = [&](const SEntry &E) {
    ++St.ProtectedEntriesVisited;
    if (isFwd(E.Obj)) {
      if (E.Agent != E.Obj) {
        forwardVal(E.Agent);
        ForwardedAnAgent = true;
      }
      PendHold.push_back(E);
    } else {
      PendFinal.push_back(E);
    }
  };
  for (unsigned I = 0; I <= G; ++I) {
    for (const SEntry &E : Protected[I])
      Classify(E);
    Protected[I].clear();
  }
  // Scope lists participate in every collection (their objects are
  // uncollected, so entries classify as held — but tconcs, objects,
  // and agents parked there can reference collected generations).
  for (auto &List : ScopeProtected) {
    for (const SEntry &E : List)
      Classify(E);
    List.clear();
  }
  if (ForwardedAnAgent)
    sweep();

  // Second block — salvage fixpoint. Each round delivers every entry
  // whose tconc is accessible, appending the agent to the tconc via a
  // fresh pair born directly in the target generation, then closes
  // reachability (a delivered object can make more tconcs accessible).
  while (true) {
    ++St.GuardianLoopIterations;
    std::vector<SEntry> FinalList;
    size_t Keep = 0;
    for (const SEntry &E : PendFinal) {
      if (isFwd(E.Tconc))
        FinalList.push_back(E);
      else
        PendFinal[Keep++] = E;
    }
    PendFinal.resize(Keep);
    if (FinalList.empty())
      break;
    for (const SEntry &E : FinalList) {
      forwardVal(E.Agent);
      // Collector::appendToTconc: fresh (#f . #f) cell in (target
      // generation, age 0); fill the old last cell; publish.
      ObjId NewCell = cons(SVal::immediate(Value::falseV()),
                           SVal::immediate(Value::falseV()));
      Objects[NewCell].Gen = static_cast<uint8_t>(T);
      // allocateInGeneration targets the ladder even while scopes are
      // open (newObject stamped the innermost depth; undo it).
      Objects[NewCell].Scope = 0;
      Objects[NewCell].TconcPart = true;
      SObj &Header = Objects[E.Tconc.Id];
      ObjId OldLast = Header.Fields[1].Id;
      Objects[OldLast].Fields[0] = E.Agent;
      Objects[OldLast].Fields[1] = SVal::object(NewCell);
      Objects[E.Tconc.Id].Fields[1] = SVal::object(NewCell);
      ++St.GuardianObjectsSaved;
    }
    sweep();
  }
  St.GuardianEntriesDropped += PendFinal.size();

  // Third block — re-park surviving registrations. A participant in an
  // open scope pins the entry to that (deepest) scope's list, so it is
  // revisited at the scope's close; otherwise the entry parks on the
  // protected list of the youngest post-collection generation among
  // the heap participants. A dead guardian drops the registration.
  auto postGen = [&](ObjId Id) -> unsigned {
    const SObj &O = Objects[Id];
    if (Id >= PreCount || O.Scope != 0 || O.Gen > G)
      return O.Gen;
    GENGC_ASSERT(Out.Copied[Id], "post-generation of a reclaimed object");
    unsigned NG, NA;
    modelTargetFor(O.Gen, O.Age, T, TenureCopies, NG, NA);
    return NG;
  };
  for (const SEntry &E : PendHold) {
    if (isFwd(E.Tconc)) {
      unsigned Deepest = 0;
      for (const SVal *V : {&E.Obj, &E.Tconc, &E.Agent})
        Deepest = std::max(Deepest, scopeOf(*V));
      if (Deepest != 0) {
        ScopeProtected[Deepest - 1].push_back(E);
      } else {
        unsigned Index = Oldest;
        for (const SVal *V : {&E.Obj, &E.Tconc, &E.Agent})
          if (V->IsId)
            Index = std::min(Index, postGen(V->Id));
        Protected[Index].push_back(E);
      }
      ++St.ProtectedEntriesKept;
    } else {
      ++St.GuardianEntriesDropped;
    }
  }

  // Weak-pair pass: every surviving weak pair whose car points at a
  // collected-generation object that was not copied gets its car broken
  // to #f. (The real collector visits copied weak pairs by sweeping
  // to-space and older ones via the weak remembered sets; if those sets
  // ever miss a pair, the walk or verifyHeap diverges — that is a bug
  // this model exists to catch, not to imitate.)
  auto diedThisCycle = [&](ObjId Id) {
    return Id < PreCount && Objects[Id].Scope == 0 &&
           Objects[Id].Gen <= G && !Out.Copied[Id];
  };
  for (size_t Id = 0; Id != PreCount; ++Id) {
    SObj &O = Objects[Id];
    if (!O.Alive || O.Kind != SKind::WeakPair)
      continue;
    if (diedThisCycle(static_cast<ObjId>(Id)))
      continue; // The pair itself is dying.
    SVal &Car = O.Fields[0];
    if (!Car.IsId)
      continue;
    if (diedThisCycle(Car.Id)) {
      Car = SVal::immediate(Value::falseV());
      ++St.WeakPointersBroken;
    }
  }

  // Weak symbol table: entries whose symbol died are dropped
  // (Friedman-Wise).
  if (WeakSymbolTable) {
    for (auto It = Symbols.begin(); It != Symbols.end();) {
      if (diedThisCycle(It->second)) {
        It = Symbols.erase(It);
        ++St.SymbolsDropped;
      } else {
        ++It;
      }
    }
  }

  // Reclaim / promote. Scope residents are untouched.
  for (size_t Id = 0; Id != PreCount; ++Id) {
    SObj &O = Objects[Id];
    if (!O.Alive || O.Scope != 0 || O.Gen > G)
      continue;
    if (Out.Copied[Id]) {
      unsigned NG, NA;
      modelTargetFor(O.Gen, O.Age, T, TenureCopies, NG, NA);
      if (NG > O.Gen)
        ++St.ObjectsPromoted;
      O.Gen = static_cast<uint8_t>(NG);
      O.Age = static_cast<uint8_t>(NA);
    } else {
      O.Alive = false;
      O.Fields.clear();
      O.Data.clear();
    }
  }

  return Out;
}

//===----------------------------------------------------------------------===//
// Request scopes.
//===----------------------------------------------------------------------===//

void ShadowModel::openScope() {
  ++ScopeDepth;
  ScopeProtected.emplace_back();
}

ShadowModel::ScopeCloseOutcome ShadowModel::closeScope() {
  GENGC_ASSERT(ScopeDepth != 0, "model closeScope with no scope open");
  const unsigned D = ScopeDepth;
  ScopeCloseOutcome Out;
  Out.Depth = D;
  const size_t PreCount = Objects.size();
  Out.PreCount = PreCount;
  Out.Copied.assign(PreCount, 0);
  ModelScopeStats &St = Out.Stats;

  // Nothing in a scope nursery dies before its scope closes, so every
  // member is still (model-)alive here and BytesInScope is the scope's
  // whole bump extent.
  for (size_t Id = 0; Id != PreCount; ++Id) {
    const SObj &O = Objects[Id];
    if (O.Alive && O.Scope == D)
      St.BytesInScope += allocWords(O) * sizeof(uintptr_t);
  }

  // The from-set is exactly the closing scope's membership; everything
  // else — outer scopes included — counts as already forwarded.
  std::vector<ObjId> Work;
  auto isFwd = [&](const SVal &V) {
    if (!V.IsId)
      return true;
    if (V.Id >= PreCount)
      return true;
    return Objects[V.Id].Scope != D || Out.Copied[V.Id] != 0;
  };
  auto forwardObj = [&](ObjId Id) {
    if (Id >= PreCount)
      return;
    SObj &O = Objects[Id];
    GENGC_ASSERT(O.Alive, "scope-close traversal reached a reclaimed "
                          "object");
    if (O.Scope != D || Out.Copied[Id])
      return;
    Out.Copied[Id] = 1;
    ++St.ObjectsEvacuated;
    St.BytesEvacuated += allocWords(O) * sizeof(uintptr_t);
    Work.push_back(Id);
  };
  auto forwardVal = [&](const SVal &V) {
    if (V.IsId)
      forwardObj(V.Id);
  };
  auto scanObj = [&](const SObj &O) {
    if (O.Kind == SKind::WeakPair) {
      forwardVal(O.Fields[1]);
      return;
    }
    for (const SVal &F : O.Fields)
      forwardVal(F);
  };
  auto sweep = [&]() {
    while (!Work.empty()) {
      ObjId Id = Work.back();
      Work.pop_back();
      scanObj(Objects[Id]);
    }
  };

  // Evacuation roots: the mutator's roots, the strong symbol table,
  // and the strong fields of every live non-member. That last clause
  // is what the per-scope escape sets buy the real collector — any
  // outside object that received an into-scope pointer was recorded by
  // the barrier and is rescanned at close, whether or not the outside
  // object is itself still reachable (floating garbage retains its
  // escaped scope children until a collection reclaims the container).
  for (const SVal &V : RootStack)
    forwardVal(V);
  for (const SVal &V : Scratch)
    forwardVal(V);
  if (!WeakSymbolTable)
    for (const auto &KV : Symbols)
      forwardObj(KV.second);
  for (size_t Id = 0; Id != PreCount; ++Id) {
    const SObj &O = Objects[Id];
    if (O.Alive && O.Scope != D)
      scanObj(O);
  }
  sweep();

  // The Section 4 guardian fixpoint, over the closing scope's own
  // protected list only (other lists are untouched at scope exit).
  std::vector<SEntry> PendHold, PendFinal;
  bool ForwardedAnAgent = false;
  for (const SEntry &E : ScopeProtected[D - 1]) {
    ++St.ProtectedEntriesVisited;
    if (isFwd(E.Obj)) {
      if (E.Agent != E.Obj) {
        forwardVal(E.Agent);
        ForwardedAnAgent = true;
      }
      PendHold.push_back(E);
    } else {
      PendFinal.push_back(E);
    }
  }
  ScopeProtected[D - 1].clear();
  if (ForwardedAnAgent)
    sweep();

  while (true) {
    ++St.GuardianLoopIterations;
    std::vector<SEntry> FinalList;
    size_t Keep = 0;
    for (const SEntry &E : PendFinal) {
      if (isFwd(E.Tconc))
        FinalList.push_back(E);
      else
        PendFinal[Keep++] = E;
    }
    PendFinal.resize(Keep);
    if (FinalList.empty())
      break;
    for (const SEntry &E : FinalList) {
      forwardVal(E.Agent);
      // Collector::appendToTconc in scope-close mode: the fresh cell
      // is born in the enclosing extent (depth D-1, generation 0).
      ObjId NewCell = cons(SVal::immediate(Value::falseV()),
                           SVal::immediate(Value::falseV()));
      Objects[NewCell].Scope = static_cast<uint8_t>(D - 1);
      Objects[NewCell].TconcPart = true;
      SObj &Header = Objects[E.Tconc.Id];
      ObjId OldLast = Header.Fields[1].Id;
      Objects[OldLast].Fields[0] = E.Agent;
      Objects[OldLast].Fields[1] = SVal::object(NewCell);
      Objects[E.Tconc.Id].Fields[1] = SVal::object(NewCell);
      ++St.GuardianObjectsSaved;
    }
    sweep();
  }
  St.GuardianEntriesDropped += PendFinal.size();

  // Re-park survivors: evacuated participants now live at depth D-1,
  // so the deepest-scope rule lands the entry on an outer scope's list
  // or, with no scope participant left, on the youngest-generation
  // list (every evacuee is generation 0).
  auto postScope = [&](const SVal &V) -> unsigned {
    if (!V.IsId)
      return 0;
    if (V.Id >= PreCount)
      return D - 1;
    const SObj &O = Objects[V.Id];
    return O.Scope == D ? D - 1 : O.Scope;
  };
  const unsigned Oldest = Generations - 1;
  for (const SEntry &E : PendHold) {
    if (isFwd(E.Tconc)) {
      unsigned Deepest = 0;
      for (const SVal *V : {&E.Obj, &E.Tconc, &E.Agent})
        Deepest = std::max(Deepest, postScope(*V));
      if (Deepest != 0) {
        ScopeProtected[Deepest - 1].push_back(E);
      } else {
        unsigned Index = Oldest;
        for (const SVal *V : {&E.Obj, &E.Tconc, &E.Agent})
          if (V->IsId)
            Index = std::min(
                Index, static_cast<unsigned>(Objects[V->Id].Gen));
        Protected[Index].push_back(E);
      }
      ++St.ProtectedEntriesKept;
    } else {
      ++St.GuardianEntriesDropped;
    }
  }

  // Weak pairs: any survivor (outside the scope, in an outer scope, or
  // just evacuated) whose car points at a scope-dying member is broken.
  auto diedWithScope = [&](ObjId Id) {
    return Id < PreCount && Objects[Id].Scope == D && !Out.Copied[Id];
  };
  for (size_t Id = 0; Id != Objects.size(); ++Id) {
    SObj &O = Objects[Id];
    if (!O.Alive || O.Kind != SKind::WeakPair)
      continue;
    if (diedWithScope(static_cast<ObjId>(Id)))
      continue;
    SVal &Car = O.Fields[0];
    if (Car.IsId && diedWithScope(Car.Id)) {
      Car = SVal::immediate(Value::falseV());
      ++St.WeakPointersBroken;
    }
  }

  // Weak symbol table: in-scope symbols that did not escape die with
  // the scope.
  if (WeakSymbolTable) {
    for (auto It = Symbols.begin(); It != Symbols.end();) {
      if (diedWithScope(It->second)) {
        It = Symbols.erase(It);
        ++St.SymbolsDropped;
      } else {
        ++It;
      }
    }
  }

  // Graduate / reclaim, then retire the scope.
  for (size_t Id = 0; Id != PreCount; ++Id) {
    SObj &O = Objects[Id];
    if (!O.Alive || O.Scope != D)
      continue;
    if (Out.Copied[Id]) {
      O.Scope = static_cast<uint8_t>(D - 1);
    } else {
      O.Alive = false;
      O.Fields.clear();
      O.Data.clear();
    }
  }
  GENGC_ASSERT(ScopeProtected.back().empty(),
               "closed scope still holds protected entries");
  ScopeProtected.pop_back();
  --ScopeDepth;
  return Out;
}

//===----------------------------------------------------------------------===//
// Census prediction.
//===----------------------------------------------------------------------===//

namespace {

SpaceKind spaceOfKind(SKind K) {
  switch (K) {
  case SKind::Pair:
    return SpaceKind::Pair;
  case SKind::WeakPair:
    return SpaceKind::WeakPair;
  case SKind::Vector:
  case SKind::Symbol:
  case SKind::Box:
  case SKind::Record:
    return SpaceKind::Typed;
  case SKind::String:
  case SKind::Flonum:
  case SKind::Bytevector:
    return SpaceKind::Data;
  }
  GENGC_UNREACHABLE("bad shadow kind in spaceOf");
}

CensusKind censusKindOf(SKind K) {
  switch (K) {
  case SKind::Pair:
    return CensusKind::Pair;
  case SKind::WeakPair:
    return CensusKind::WeakPair;
  case SKind::Vector:
    return CensusKind::Vector;
  case SKind::String:
    return CensusKind::String;
  case SKind::Symbol:
    return CensusKind::Symbol;
  case SKind::Box:
    return CensusKind::Box;
  case SKind::Flonum:
    return CensusKind::Flonum;
  case SKind::Bytevector:
    return CensusKind::Bytevector;
  case SKind::Record:
    return CensusKind::Record;
  }
  GENGC_UNREACHABLE("bad shadow kind in censusKindOf");
}

} // namespace

ModelCensus ShadowModel::censusExpect() const {
  ModelCensus C;
  for (const SObj &O : Objects) {
    if (!O.Alive)
      continue;
    const unsigned Sp = static_cast<unsigned>(spaceOfKind(O.Kind));
    const unsigned K = static_cast<unsigned>(censusKindOf(O.Kind));
    const uint64_t Bytes = allocWords(O) * sizeof(uintptr_t);
    C.ObjectCount[O.Gen][Sp] += 1;
    C.UsedBytes[O.Gen][Sp] += Bytes;
    C.KindCounts[K] += 1;
    C.KindBytes[K] += Bytes;
  }
  return C;
}

//===----------------------------------------------------------------------===//
// Segment donation (DESIGN.md §14).
//===----------------------------------------------------------------------===//

ShadowModel::GraphSnapshot ShadowModel::snapshotGraph(SVal Root) const {
  GraphSnapshot G;
  // Maps already-visited object ids to node indices — the shadow of
  // donateGraph's donor-bits -> copy-bits map, preserving sharing and
  // cycles.
  std::unordered_map<ObjId, uint32_t> Index;
  std::vector<ObjId> Pending;

  auto symbolName = [&](ObjId Sym) -> const std::string & {
    const SObj &O = Objects[Sym];
    GENGC_ASSERT(O.Kind == SKind::Symbol && !O.Fields.empty(),
                 "snapshotGraph: malformed shadow symbol");
    return Objects[O.Fields[0].Id].Data;
  };

  auto snapVal = [&](const SVal &V) -> SnapVal {
    SnapVal S;
    if (!V.IsId) {
      S.Imm = V.Imm;
      return S;
    }
    const SObj &O = Objects[V.Id];
    if (O.Kind == SKind::Symbol) {
      // Symbols travel by name (a fixup), never as copies.
      S.Kind = SnapVal::K::Symbol;
      S.Name = symbolName(V.Id);
      return S;
    }
    auto Found = Index.find(V.Id);
    if (Found == Index.end()) {
      Found = Index.emplace(V.Id, static_cast<uint32_t>(G.Nodes.size()))
                  .first;
      G.Nodes.emplace_back();
      G.Words += allocWords(O);
      Pending.push_back(V.Id);
    }
    S.Kind = SnapVal::K::Node;
    S.Node = Found->second;
    return S;
  };

  G.Root = snapVal(Root);
  while (!Pending.empty()) {
    const ObjId Id = Pending.back();
    Pending.pop_back();
    const SObj &O = Objects[Id];
    // Filled into a local first: snapVal may grow G.Nodes.
    SnapNode N;
    N.Kind = O.Kind;
    N.Length = O.Length;
    N.Data = O.Data;
    N.FloBits = O.FloBits;
    N.Fields.reserve(O.Fields.size());
    // Weak cars are traversed strongly, like donateGraph: the donated
    // copy must stay structurally complete until the receiver's own
    // collector gets a chance to break it.
    for (const SVal &F : O.Fields)
      N.Fields.push_back(snapVal(F));
    G.Nodes[Index[Id]] = std::move(N);
  }
  return G;
}

SVal ShadowModel::adoptGraph(const GraphSnapshot &G) {
  // Phase 1, mirroring Heap::adoptDonatedGraph: intern every fixup
  // name first (each may allocate a string + symbol in the nursery).
  // Phase 2 then instantiates the copied nodes directly in the oldest
  // generation — adoption retags whole donated segments tenured, so
  // every adopted object is born old, age 0, scope 0.
  auto internFixup = [&](const SnapVal &S) {
    if (S.Kind == SnapVal::K::Symbol)
      intern(S.Name);
  };
  internFixup(G.Root);
  for (const SnapNode &N : G.Nodes)
    for (const SnapVal &F : N.Fields)
      internFixup(F);

  const uint8_t Oldest = static_cast<uint8_t>(Generations - 1);
  std::vector<ObjId> Ids(G.Nodes.size(), NoObj);
  for (size_t I = 0; I != G.Nodes.size(); ++I) {
    const SnapNode &N = G.Nodes[I];
    const ObjId Id = newObject(N.Kind);
    SObj &O = Objects[Id];
    O.Gen = Oldest;
    O.Age = 0;
    O.Scope = 0;
    O.Length = N.Length;
    O.Data = N.Data;
    O.FloBits = N.FloBits;
    Ids[I] = Id;
  }

  auto resolve = [&](const SnapVal &S) -> SVal {
    switch (S.Kind) {
    case SnapVal::K::Imm: {
      SVal V;
      V.Imm = S.Imm;
      return V;
    }
    case SnapVal::K::Node:
      return SVal::object(Ids[S.Node]);
    case SnapVal::K::Symbol:
      return intern(S.Name);
    }
    GENGC_UNREACHABLE("bad SnapVal kind");
  };

  for (size_t I = 0; I != G.Nodes.size(); ++I) {
    const SnapNode &N = G.Nodes[I];
    SObj &O = Objects[Ids[I]];
    O.Fields.reserve(N.Fields.size());
    for (const SnapVal &F : N.Fields) {
      const SVal V = resolve(F); // may not grow Objects: names interned
      O.Fields.push_back(V);
    }
  }
  return resolve(G.Root);
}

//===- object/Value.h - Tagged Scheme values ------------------*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tagged value representation. A Value is one machine word:
///
///   bits 2..0 = 000  fixnum        (signed integer in bits 63..3)
///   bits 2..0 = 001  pair pointer  (two-word cell; weak pairs share this
///                                   tag and are distinguished by the
///                                   segment's space, exactly as in the
///                                   paper's Section 4)
///   bits 2..0 = 011  object pointer (typed heap object with a header word)
///   bits 2..0 = 101  immediate     (bits 7..3 select the kind; the payload,
///                                   e.g. a character code, lives above)
///
/// Heap cells are 8-byte aligned so pointer payloads have three zero low
/// bits available for the tag.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_OBJECT_VALUE_H
#define GENGC_OBJECT_VALUE_H

#include <cstddef>
#include <cstdint>

#include "support/Assert.h"

namespace gengc {

/// Low three bits of a Value word.
enum class TagKind : uintptr_t {
  Fixnum = 0b000,
  Pair = 0b001,
  Object = 0b011,
  Immediate = 0b101,
};

/// Kinds of non-pointer, non-fixnum values. Stored in bits 7..3 of an
/// immediate word.
enum class ImmKind : uintptr_t {
  False = 0,
  True = 1,
  Nil = 2,     ///< The empty list.
  Eof = 3,     ///< End-of-file object.
  Void = 4,    ///< The unspecified value.
  Unbound = 5, ///< Marker for unbound variables / absent table entries.
  Char = 6,    ///< Character; the code point is the payload.
  Forward = 7, ///< Collector-internal: marks a forwarded pair's car.
               ///< Never visible to the mutator.
  BrokenWeak = 8, ///< Reserved (weak cars are broken to False, per the
                  ///< paper; kept for experimentation).
};

/// A two-word cons cell. Weak pairs use the same layout; only the segment
/// they live in differs.
struct PairCell {
  uintptr_t Car;
  uintptr_t Cdr;
};

/// One tagged machine word: fixnum, immediate, or heap pointer.
class Value {
public:
  static constexpr uintptr_t TagMask = 0b111;
  static constexpr int FixnumShift = 3;
  static constexpr intptr_t FixnumMax =
      (static_cast<intptr_t>(1) << (8 * sizeof(uintptr_t) - 4)) - 1;
  static constexpr intptr_t FixnumMin = -FixnumMax - 1;

  /// Default-constructs the value 0 (the fixnum zero).
  constexpr Value() : Bits(0) {}

  /// Reconstructs a value from its raw bits.
  static constexpr Value fromBits(uintptr_t Bits) { return Value(Bits); }
  constexpr uintptr_t bits() const { return Bits; }

  //===------------------------------------------------------------------===//
  // Constructors for each representation.
  //===------------------------------------------------------------------===//

  static constexpr Value fixnum(intptr_t N) {
    return Value(static_cast<uintptr_t>(N) << FixnumShift);
  }
  static constexpr Value falseV() { return immediate(ImmKind::False, 0); }
  static constexpr Value trueV() { return immediate(ImmKind::True, 0); }
  static constexpr Value nil() { return immediate(ImmKind::Nil, 0); }
  static constexpr Value eof() { return immediate(ImmKind::Eof, 0); }
  static constexpr Value voidV() { return immediate(ImmKind::Void, 0); }
  static constexpr Value unbound() { return immediate(ImmKind::Unbound, 0); }
  static constexpr Value character(uint32_t Code) {
    return immediate(ImmKind::Char, Code);
  }
  static constexpr Value boolean(bool B) { return B ? trueV() : falseV(); }

  /// Collector-internal forwarding marker (stored in a forwarded pair's
  /// car field).
  static constexpr Value forwardMarker() {
    return immediate(ImmKind::Forward, 0);
  }

  /// Tags \p Cell as a pair pointer.
  static Value pair(PairCell *Cell) {
    uintptr_t P = reinterpret_cast<uintptr_t>(Cell);
    GENGC_ASSERT((P & TagMask) == 0, "pair cell must be 8-byte aligned");
    return Value(P | static_cast<uintptr_t>(TagKind::Pair));
  }

  /// Tags \p Header (the first word of a typed heap object) as an object
  /// pointer.
  static Value object(uintptr_t *Header) {
    uintptr_t P = reinterpret_cast<uintptr_t>(Header);
    GENGC_ASSERT((P & TagMask) == 0, "object must be 8-byte aligned");
    return Value(P | static_cast<uintptr_t>(TagKind::Object));
  }

  //===------------------------------------------------------------------===//
  // Classification.
  //===------------------------------------------------------------------===//

  constexpr TagKind tag() const { return static_cast<TagKind>(Bits & TagMask); }
  constexpr bool isFixnum() const { return tag() == TagKind::Fixnum; }
  constexpr bool isPair() const { return tag() == TagKind::Pair; }
  constexpr bool isObject() const { return tag() == TagKind::Object; }
  constexpr bool isImmediate() const { return tag() == TagKind::Immediate; }
  /// True for pairs and typed objects, the only representations that live
  /// in (and move around) the garbage-collected heap.
  constexpr bool isHeapPointer() const { return isPair() || isObject(); }

  constexpr ImmKind immKind() const {
    return static_cast<ImmKind>((Bits >> 3) & 0x1F);
  }
  constexpr bool isImm(ImmKind K) const {
    return isImmediate() && immKind() == K;
  }
  constexpr bool isFalse() const { return isImm(ImmKind::False); }
  constexpr bool isTrue() const { return isImm(ImmKind::True); }
  constexpr bool isNil() const { return isImm(ImmKind::Nil); }
  constexpr bool isEof() const { return isImm(ImmKind::Eof); }
  constexpr bool isVoid() const { return isImm(ImmKind::Void); }
  constexpr bool isUnbound() const { return isImm(ImmKind::Unbound); }
  constexpr bool isChar() const { return isImm(ImmKind::Char); }
  constexpr bool isForwardMarker() const { return isImm(ImmKind::Forward); }
  /// Scheme truthiness: everything except #f is true.
  constexpr bool isTruthy() const { return !isFalse(); }

  //===------------------------------------------------------------------===//
  // Accessors.
  //===------------------------------------------------------------------===//

  constexpr intptr_t asFixnum() const {
    GENGC_ASSERT(isFixnum(), "asFixnum on non-fixnum");
    return static_cast<intptr_t>(Bits) >> FixnumShift;
  }

  constexpr uint32_t charCode() const {
    GENGC_ASSERT(isChar(), "charCode on non-character");
    return static_cast<uint32_t>(Bits >> 8);
  }

  PairCell *pairCell() const {
    GENGC_ASSERT(isPair(), "pairCell on non-pair");
    return reinterpret_cast<PairCell *>(Bits & ~TagMask);
  }

  uintptr_t *objectHeader() const {
    GENGC_ASSERT(isObject(), "objectHeader on non-object");
    return reinterpret_cast<uintptr_t *>(Bits & ~TagMask);
  }

  /// Untagged address of the heap cell this value points to. Only valid
  /// for heap pointers.
  uintptr_t heapAddress() const {
    GENGC_ASSERT(isHeapPointer(), "heapAddress on non-heap value");
    return Bits & ~TagMask;
  }

  /// Identity comparison (Scheme's eq?).
  constexpr bool operator==(const Value &O) const { return Bits == O.Bits; }
  constexpr bool operator!=(const Value &O) const { return Bits != O.Bits; }

private:
  explicit constexpr Value(uintptr_t Bits) : Bits(Bits) {}

  static constexpr Value immediate(ImmKind K, uintptr_t Payload) {
    return Value((Payload << 8) | (static_cast<uintptr_t>(K) << 3) |
                 static_cast<uintptr_t>(TagKind::Immediate));
  }

  uintptr_t Bits;
};

static_assert(sizeof(Value) == sizeof(uintptr_t),
              "Value must be one machine word");

} // namespace gengc

#endif // GENGC_OBJECT_VALUE_H

//===- object/Layout.h - Typed heap object layouts ------------*- C++ -*-===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Layouts for typed heap objects. Every typed object starts with a
/// one-word header:
///
///   bits  7..0  ObjectKind
///   bits 63..8  length (elements for vectors/records, bytes for strings
///               and bytevectors, unused otherwise)
///
/// Kind Forward (0) marks an object forwarded during collection; the word
/// after the header then holds the tagged new location. Pairs have no
/// header; a forwarded pair stores Value::forwardMarker() in its car and
/// the new location in its cdr.
///
/// The collector needs two facts about every object: its size in words
/// and whether its payload words are tagged Values to trace. Both are
/// derivable from the header alone, which keeps the Cheney sweep a simple
/// linear walk over segment runs.
///
//===----------------------------------------------------------------------===//

#ifndef GENGC_OBJECT_LAYOUT_H
#define GENGC_OBJECT_LAYOUT_H

#include <cstring>

#include "object/Value.h"
#include "support/MathExtras.h"

namespace gengc {

/// Discriminates typed heap objects (low byte of the header word).
enum class ObjectKind : uint8_t {
  Forward = 0,    ///< Collector-internal: object has been copied.
  Vector = 1,     ///< Header + N tagged slots.
  String = 2,     ///< Header + N bytes (pointerless).
  Symbol = 3,     ///< Header + {Name, Hash, PropertyList}.
  Box = 4,        ///< Header + one tagged slot.
  Flonum = 5,     ///< Header + one double (pointerless).
  Bytevector = 6, ///< Header + N bytes (pointerless).
  Closure = 7,    ///< Header + {Clauses, Env, Name}. Clauses is a list of
                  ///< (formals . body) pairs, supporting case-lambda.
  Primitive = 8,  ///< Header + {Index, MinArgs, MaxArgs, Name}.
  PortHandle = 9, ///< Header + {PortId, Direction}. The buffered port
                  ///< state itself lives outside the collected heap.
  Record = 10,    ///< Header + N tagged slots; slot 0 is a tag by
                  ///< convention.
  Guardian = 11,  ///< Header + {Tconc}. First-class guardian object.
};

/// Number of fixed tagged fields for kinds with a constant layout.
constexpr size_t SymbolFieldCount = 3;
constexpr size_t ClosureFieldCount = 3;
constexpr size_t PrimitiveFieldCount = 4;
constexpr size_t PortHandleFieldCount = 2;
constexpr size_t GuardianFieldCount = 1;

/// Field indices, named to keep call sites readable.
enum SymbolField { SymName = 0, SymHash = 1, SymPlist = 2 };
enum ClosureField { CloClauses = 0, CloEnv = 1, CloName = 2 };
enum PrimitiveField {
  PrimIndex = 0,
  PrimMinArgs = 1,
  PrimMaxArgs = 2,
  PrimName = 3
};
enum PortHandleField { PortId = 0, PortDirection = 1 };
enum GuardianField { GuardTconc = 0 };

/// Builds a header word from a kind and a length.
constexpr uintptr_t makeHeader(ObjectKind K, uintptr_t Length) {
  return static_cast<uintptr_t>(K) | (Length << 8);
}

constexpr ObjectKind headerKind(uintptr_t Header) {
  return static_cast<ObjectKind>(Header & 0xFF);
}

constexpr uintptr_t headerLength(uintptr_t Header) { return Header >> 8; }

/// Returns the kind of a typed object value.
inline ObjectKind objectKind(Value V) {
  return headerKind(*V.objectHeader());
}

/// Returns the object's logical size in words (header included), derived
/// from the header alone.
inline size_t objectSizeInWords(uintptr_t Header) {
  const uintptr_t Len = headerLength(Header);
  switch (headerKind(Header)) {
  case ObjectKind::Forward:
    GENGC_UNREACHABLE("size of forwarded object requested");
  case ObjectKind::Vector:
  case ObjectKind::Record:
    return 1 + Len;
  case ObjectKind::String:
  case ObjectKind::Bytevector:
    return 1 + divideCeil(Len, sizeof(uintptr_t));
  case ObjectKind::Symbol:
    return 1 + SymbolFieldCount;
  case ObjectKind::Box:
    return 2;
  case ObjectKind::Flonum:
    return 2;
  case ObjectKind::Closure:
    return 1 + ClosureFieldCount;
  case ObjectKind::Primitive:
    return 1 + PrimitiveFieldCount;
  case ObjectKind::PortHandle:
    return 1 + PortHandleFieldCount;
  case ObjectKind::Guardian:
    return 1 + GuardianFieldCount;
  }
  GENGC_UNREACHABLE("corrupt object header");
}

/// Size in words actually reserved by the allocator. Every object gets at
/// least two words so a forwarding pointer always fits.
inline size_t objectAllocWords(uintptr_t Header) {
  size_t S = objectSizeInWords(Header);
  return S < 2 ? 2 : S;
}

/// Returns true if the object's payload words are tagged Values that the
/// collector must trace.
constexpr bool kindHasPointers(ObjectKind K) {
  switch (K) {
  case ObjectKind::Vector:
  case ObjectKind::Symbol:
  case ObjectKind::Box:
  case ObjectKind::Closure:
  case ObjectKind::Primitive:
  case ObjectKind::PortHandle:
  case ObjectKind::Record:
  case ObjectKind::Guardian:
    return true;
  case ObjectKind::Forward:
  case ObjectKind::String:
  case ObjectKind::Flonum:
  case ObjectKind::Bytevector:
    return false;
  }
  return false;
}

/// Number of tagged payload slots to trace (0 for pointerless kinds).
inline size_t objectPointerFieldCount(uintptr_t Header) {
  const ObjectKind K = headerKind(Header);
  if (!kindHasPointers(K))
    return 0;
  return objectSizeInWords(Header) - 1;
}

//===----------------------------------------------------------------------===//
// Raw field access. These do not apply the write barrier; mutation that
// can create old-to-young pointers must go through Heap's setters.
//===----------------------------------------------------------------------===//

/// Pointer to the first payload word of a typed object.
inline uintptr_t *objectPayload(Value V) { return V.objectHeader() + 1; }

/// Reads tagged field \p I of typed object \p V.
inline Value objectField(Value V, size_t I) {
  GENGC_ASSERT(I < objectSizeInWords(*V.objectHeader()) - 1,
               "object field index out of range");
  return Value::fromBits(objectPayload(V)[I]);
}

/// Writes tagged field \p I of typed object \p V without a barrier.
inline void objectFieldSetRaw(Value V, size_t I, Value X) {
  GENGC_ASSERT(I < objectSizeInWords(*V.objectHeader()) - 1,
               "object field index out of range");
  objectPayload(V)[I] = X.bits();
}

/// Checked kind test for typed objects.
inline bool isObjectOfKind(Value V, ObjectKind K) {
  return V.isObject() && objectKind(V) == K;
}

inline bool isVector(Value V) { return isObjectOfKind(V, ObjectKind::Vector); }
inline bool isString(Value V) { return isObjectOfKind(V, ObjectKind::String); }
inline bool isSymbol(Value V) { return isObjectOfKind(V, ObjectKind::Symbol); }
inline bool isBox(Value V) { return isObjectOfKind(V, ObjectKind::Box); }
inline bool isFlonum(Value V) { return isObjectOfKind(V, ObjectKind::Flonum); }
inline bool isBytevector(Value V) {
  return isObjectOfKind(V, ObjectKind::Bytevector);
}
inline bool isClosure(Value V) {
  return isObjectOfKind(V, ObjectKind::Closure);
}
inline bool isPrimitive(Value V) {
  return isObjectOfKind(V, ObjectKind::Primitive);
}
inline bool isPortHandle(Value V) {
  return isObjectOfKind(V, ObjectKind::PortHandle);
}
inline bool isRecord(Value V) { return isObjectOfKind(V, ObjectKind::Record); }
inline bool isGuardianObject(Value V) {
  return isObjectOfKind(V, ObjectKind::Guardian);
}

/// Length (elements or bytes) encoded in the object's header.
inline size_t objectLength(Value V) {
  return headerLength(*V.objectHeader());
}

/// Character data of a string object.
inline char *stringData(Value V) {
  GENGC_ASSERT(isString(V), "stringData on non-string");
  return reinterpret_cast<char *>(objectPayload(V));
}

/// Byte data of a bytevector object.
inline uint8_t *bytevectorData(Value V) {
  GENGC_ASSERT(isBytevector(V), "bytevectorData on non-bytevector");
  return reinterpret_cast<uint8_t *>(objectPayload(V));
}

/// Reads a flonum's payload.
inline double flonumValue(Value V) {
  GENGC_ASSERT(isFlonum(V), "flonumValue on non-flonum");
  double D;
  std::memcpy(&D, objectPayload(V), sizeof(double));
  return D;
}

/// Writes a flonum's payload (flonums are immutable at the language
/// level; this is for initialization).
inline void flonumSetValue(Value V, double D) {
  GENGC_ASSERT(isFlonum(V), "flonumSetValue on non-flonum");
  std::memcpy(objectPayload(V), &D, sizeof(double));
}

//===----------------------------------------------------------------------===//
// Pair access (unbarriered reads; barriered writes live in Heap).
//===----------------------------------------------------------------------===//

inline Value pairCar(Value P) { return Value::fromBits(P.pairCell()->Car); }
inline Value pairCdr(Value P) { return Value::fromBits(P.pairCell()->Cdr); }

inline void pairSetCarRaw(Value P, Value V) { P.pairCell()->Car = V.bits(); }
inline void pairSetCdrRaw(Value P, Value V) { P.pairCell()->Cdr = V.bits(); }

} // namespace gengc

#endif // GENGC_OBJECT_LAYOUT_H

#!/usr/bin/env python3
"""Aggregates Google Benchmark JSON files into one BENCH_<date>.json.

Called by scripts/bench.sh after every run (and by --summarize); also
usable standalone:

    python3 scripts/bench_summarize.py bench-results/
    python3 scripts/bench_summarize.py bench-results/ --output /tmp/s.json

Every counter key is derived from the JSON itself — there is no
hand-maintained list of collector counters, so a benchmark that starts
publishing a new gc_*/latency_* key shows up in the summary without
touching this script. Keys are classified by shape:

  - distribution keys (``..._p50_ns``, ``..._p99_ns``, ``..._max_ns``,
    high-water marks like ``executor_max_pending``): percentiles of
    independent runs can't be summed, so the summary reports the max
    and median across benchmarks instead, under
    ``distributions``;
  - ratio keys (``mmu_*``, ``*_imbalance``, ``slo_pass``,
    ``*_workers``): dimensionless per-run values, listed per row only;
  - everything else numeric (counts of events: collections, bytes,
    tickets, violations, sampled ops): summed into ``totals``.
"""

import argparse
import datetime
import glob
import json
import os
import re
import sys

# Counter prefixes folded into the summary. Anything else in a
# benchmark entry is benchmark-specific and stays per-row only.
PREFIXES = ("gc_", "latency_", "mmu_", "slo_", "alloc_", "executor_",
            "transfer_", "messages_")

# Percentile/extremum shape: aggregate as a distribution, never sum.
# gc_scope_max_depth is max-merged at the source (deepest nesting seen),
# so it aggregates the same way.
DISTRIBUTION_RE = re.compile(
    r"_(p\d+|max)_ns$|_max_pending$|_max_worker_bytes$|_max_depth$")

# Dimensionless ratios/flags: meaningless to sum or take medians of
# across heterogeneous benchmarks; kept per-row only.
RATIO_RE = re.compile(r"^mmu_|_imbalance$|^slo_pass$|_workers$")


def classify(key):
    if DISTRIBUTION_RE.search(key):
        return "distribution"
    if RATIO_RE.search(key):
        return "ratio"
    return "total"


def summarize(out_dir):
    rows, totals, dists = [], {}, {}
    files_read, files_bad = 0, 0

    for path in sorted(glob.glob(os.path.join(out_dir, "*.json"))):
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_summarize: skipping malformed {path}: {e}",
                  file=sys.stderr)
            files_bad += 1
            continue
        files_read += 1
        for b in data.get("benchmarks", []):
            if b.get("run_type") == "aggregate":
                continue  # mean/median/stddev rows duplicate the raw runs
            row = {
                "file": os.path.splitext(os.path.basename(path))[0],
                "name": b.get("name"),
                "real_time": b.get("real_time"),
                "cpu_time": b.get("cpu_time"),
                "time_unit": b.get("time_unit"),
                "iterations": b.get("iterations"),
            }
            for key, val in b.items():
                if not key.startswith(PREFIXES):
                    continue
                if not isinstance(val, (int, float)):
                    continue
                row[key] = val
                kind = classify(key)
                if kind == "total":
                    totals[key] = totals.get(key, 0) + val
                elif kind == "distribution":
                    dists.setdefault(key, []).append(val)
            rows.append(row)

    return {
        "date": datetime.date.today().isoformat(),
        "source": out_dir,
        "files": files_read,
        "files_skipped": files_bad,
        "gc_totals": totals,
        # Fleet-wide view over every benchmark that published this
        # percentile/high-water counter: worst and median of the
        # per-benchmark values.
        "distributions": {
            key: {
                "max": max(vals),
                "median": sorted(vals)[len(vals) // 2],
                "benchmarks": len(vals),
            }
            for key, vals in sorted(dists.items())
        },
        "benchmarks": rows,
    }, files_read, files_bad


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("out_dir", help="directory of per-binary benchmark JSON")
    ap.add_argument("--output", default=None,
                    help="summary path (default BENCH_<date>.json in cwd)")
    args = ap.parse_args()

    summary, files_read, files_bad = summarize(args.out_dir)
    name = args.output or f"BENCH_{summary['date']}.json"
    with open(name, "w") as f:
        json.dump(summary, f, indent=2)
        f.write("\n")
    print(f"==> {name}: {len(summary['benchmarks'])} benchmarks from "
          f"{files_read} files"
          + (f" ({files_bad} skipped)" if files_bad else ""))


if __name__ == "__main__":
    main()

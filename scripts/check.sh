#!/usr/bin/env bash
# Full local gate: everything CI runs, in one command.
#
#   scripts/check.sh            # Release build + tests + rootcheck
#   scripts/check.sh --stress   # additionally run the suite with
#                               # GENGC_STRESS=ON (collect-on-every-
#                               # allocation + fromspace poisoning)
#   scripts/check.sh --asan     # additionally run the suite under
#                               # AddressSanitizer + UBSan
#   scripts/check.sh --tsan     # additionally run the suite under
#                               # ThreadSanitizer (the shard runtime's
#                               # cross-thread edges: mailboxes,
#                               # executor, shutdown ordering)
#   scripts/check.sh --all      # all of the above
#
# Each mode uses its own build tree under build-check/ so switching
# modes never poisons an incremental build.

set -euo pipefail
cd "$(dirname "$0")/.."

STRESS=0
ASAN=0
TSAN=0
for arg in "$@"; do
  case "$arg" in
    --stress) STRESS=1 ;;
    --asan) ASAN=1 ;;
    --tsan) TSAN=1 ;;
    --all) STRESS=1; ASAN=1; TSAN=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

run_suite() {
  local name="$1"; shift
  local dir="build-check/$name"
  echo "==> [$name] configure: $*"
  cmake -B "$dir" -S . "$@" >/dev/null
  echo "==> [$name] build"
  cmake --build "$dir" -j >/dev/null
  echo "==> [$name] test"
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
  # Telemetry smoke: a traced run must produce a Chrome trace_event
  # JSON file that a strict parser accepts.
  echo "==> [$name] telemetry smoke"
  GENGC_GC_LOG=1 GENGC_GC_TRACE="$dir/smoke-trace.json" \
    "$dir/examples/quickstart" >/dev/null
  python3 -m json.tool "$dir/smoke-trace.json" >/dev/null
  rm -f "$dir/smoke-trace.json"
  # Differential fuzz smoke: the fixed-seed corpus cross-checks every
  # collection against the shadow-model oracle (also runs inside CTest
  # as gcfuzz.seed_corpus; repeated here so a failure prints the
  # shrunk reproducer trace prominently at the end of the gate).
  echo "==> [$name] gcfuzz smoke"
  "$dir/tools/gcfuzz/gcfuzz" --seed-corpus --out "$dir"
  # Elision differential: the same corpus with the compile-time
  # write-barrier elision forced off (the default corpus runs with it
  # on), then random whole Scheme programs executed under both settings
  # of the toggle and compared output-for-output.
  echo "==> [$name] elision differential"
  "$dir/tools/gcfuzz/gcfuzz" --seed-corpus --elide off --out "$dir"
  "$dir/tools/gcfuzz/gcfuzz" --vm-diff 30 --out "$dir"
  # Scoped corpus: the trace alphabet gains request-scope open/close/
  # alloc ops and every closeScope is cross-checked against the
  # scope-aware shadow model; then the vm-diff matrix with half the
  # forms inside (call-in-new-scope ...) — elision × scoping.
  echo "==> [$name] scoped corpus"
  "$dir/tools/gcfuzz/gcfuzz" --seed-corpus --scoped on --out "$dir"
  "$dir/tools/gcfuzz/gcfuzz" --vm-diff 30 --scoped on --out "$dir"
  # Donation corpus: donate-send/receive/drop in the alphabet, the
  # shadow model's snapshot/adopt bookkeeping as the oracle, and the
  # exchange arena's donated-segment ownership audited at every
  # collection and at end of trace.
  echo "==> [$name] donation corpus"
  "$dir/tools/gcfuzz/gcfuzz" --seed-corpus --donation on --out "$dir"
  # Canary: a deliberately leaked scope escape must be caught by the
  # scope-aware oracle — a zero exit means scope closes are unchecked.
  echo "==> [$name] scope-leak canary"
  if "$dir/tools/gcfuzz/gcfuzz" --traces 40 --config paper --scoped on \
       --fault leak-scope-escape --no-shrink --out "$dir" \
       >/dev/null 2>&1; then
    echo "[$name] scope-leak canary was NOT caught" >&2
    exit 1
  fi
  # Canary: with a deliberately unsound elision injected, the gate must
  # FAIL — either the store-time verifier aborts or the reachability
  # oracle reports a divergence. A zero exit means the elision safety
  # net has lost its teeth.
  echo "==> [$name] unsound-elision canary"
  if "$dir/tools/gcfuzz/gcfuzz" --traces 40 --config paper \
       --fault unsound-elision --no-shrink --out "$dir" \
       >/dev/null 2>&1; then
    echo "[$name] unsound-elision canary was NOT caught" >&2
    exit 1
  fi
  # Canary: donated segments deliberately leaked on drop must unbalance
  # the exchange arena's ownership audit and FAIL the run. A zero exit
  # means donated-segment ownership is not actually being checked.
  echo "==> [$name] donation-leak canary"
  if "$dir/tools/gcfuzz/gcfuzz" --traces 40 --config paper --scoped on \
       --donation on --fault leak-donated-segment --no-shrink \
       --out "$dir" >/dev/null 2>&1; then
    echo "[$name] donation-leak canary was NOT caught" >&2
    exit 1
  fi
  # Shard-runtime accounting smoke: eight private heaps, cross-shard
  # messages, background finalization with injected transient
  # failures; a nonzero exit means a resource went unaccounted (and
  # under --tsan, any data race fails the run).
  echo "==> [$name] loadgen smoke"
  "$dir/tools/loadgen/loadgen" --shards 8 --sessions 8 --ops 200 \
    --seed 11 --fail-rate 5 >/dev/null
  # The same accounting audit with every session inside a request
  # scope: guardian tickets delivered by scope closes instead of
  # collections must still balance the books on all 4 shards.
  echo "==> [$name] loadgen scoped smoke"
  "$dir/tools/loadgen/loadgen" --shards 4 --sessions 8 --ops 200 \
    --seed 11 --fail-rate 5 --scoped >/dev/null
  # Zero-copy donation smoke: eight shards exchanging bulk payloads by
  # segment donation; the same resource accounting must balance, and
  # the run must actually donate (nonzero transfer counters in JSON).
  echo "==> [$name] loadgen donation smoke"
  "$dir/tools/loadgen/loadgen" --shards 8 --sessions 8 --ops 200 \
    --seed 11 --fail-rate 5 --payload-bytes 16384 --donate on \
    --json "$dir/loadgen-donate.json" >/dev/null
  grep -q '"transfer_donated_segments": [1-9]' "$dir/loadgen-donate.json"
  rm -f "$dir/loadgen-donate.json"
  # Observability smoke: a 2-shard run with causal tracing, heap
  # profiling, and an SLO target. The merged fleet trace must be strict
  # JSON containing flow events (the cross-shard causal arrows), the
  # collapsed-stack profile must have sampled at least one site, and
  # the bench JSON must carry a nonzero sampled-site count.
  echo "==> [$name] observability smoke"
  "$dir/tools/loadgen/loadgen" --shards 2 --sessions 8 --ops 300 \
    --seed 7 --trace "$dir/fleet-trace.json" \
    --profile "$dir/heap.folded" --slo-max-pause-us 500000 \
    --json "$dir/loadgen-obs.json" >/dev/null
  python3 -m json.tool "$dir/fleet-trace.json" >/dev/null
  python3 -m json.tool "$dir/loadgen-obs.json" >/dev/null
  grep -q '"ph":"s"' "$dir/fleet-trace.json"
  grep -q '^gengc;' "$dir/heap.folded"
  grep -q '"alloc_sampled_sites": [1-9]' "$dir/loadgen-obs.json"
  rm -f "$dir/fleet-trace.json" "$dir/heap.folded" "$dir/loadgen-obs.json"
  # Profiler overhead gate: allocation-site sampling at the default
  # 64 KiB interval must cost <= 2% on the young-allocation microbench.
  # Release only — sanitizer and stress builds distort the ratio. Many
  # short interleaved repetitions + min-of-reps in the checker keep the
  # comparison robust to machine noise, and up to three attempts absorb
  # transient load spikes (a real regression persists at the floor and
  # fails every attempt).
  if [ "$name" = release ]; then
    echo "==> [$name] profiler overhead gate"
    local overhead_ok=0 attempt
    for attempt in 1 2 3; do
      "$dir/bench/bench_ablation" --benchmark_filter='BM_AllocYoung' \
        --benchmark_repetitions=12 --benchmark_min_time=0.15 \
        --benchmark_enable_random_interleaving=true \
        --benchmark_format=json \
        > "$dir/alloc-young.json" 2>/dev/null
      if python3 scripts/check_profiler_overhead.py \
           "$dir/alloc-young.json" 2.0; then
        overhead_ok=1
        break
      fi
      echo "[$name] overhead gate attempt $attempt over budget, retrying"
    done
    rm -f "$dir/alloc-young.json"
    if [ "$overhead_ok" != 1 ]; then
      echo "[$name] profiler overhead gate failed on all attempts" >&2
      exit 1
    fi
  fi
  # Summarizer key-derivation fixture (also runs inside CTest).
  python3 tests/scripts/bench_summarize_test.py .
  # Parallel-scavenge determinism canary: the same guardian-heavy
  # program at 1 and 4 scavenge workers must print byte-identical
  # output — resurrection order and every schedule-independent
  # collector counter. (Schedule-dependent keys like steal counts and
  # worker width are deliberately not printed.) Backed by the fuzz
  # corpus re-run at 4 workers, where the schedule-blind shadow model
  # is the oracle.
  echo "==> [$name] parallel determinism canary"
  local det_prog='(begin
    (define g (make-guardian))
    (define (reg n) (if (= n 0) #t (begin (g (cons n n)) (reg (- n 1)))))
    (reg 64)
    (collect (collect-maximum-generation))
    (collect (collect-maximum-generation))
    (define (drain acc) (let ((x (g))) (if x (drain (cons (car x) acc)) acc)))
    (display (drain (quote ()))) (newline)
    (define s (gc-stats))
    (define (show k) (display (assq k s)) (newline))
    (show (quote collections))
    (show (quote total-objects-copied))
    (show (quote total-bytes-copied))
    (show (quote total-objects-promoted))
    (show (quote total-guardian-objects-saved))
    (show (quote total-weak-pointers-broken))
    (show (quote total-finalizer-thunks-run)))'
  GENGC_GC_THREADS=1 "$dir/examples/scheme_repl" -e "$det_prog" \
    > "$dir/det-serial.txt"
  GENGC_GC_THREADS=4 "$dir/examples/scheme_repl" -e "$det_prog" \
    > "$dir/det-parallel.txt"
  if ! diff -u "$dir/det-serial.txt" "$dir/det-parallel.txt"; then
    echo "[$name] parallel scavenge diverged from serial" >&2
    exit 1
  fi
  rm -f "$dir/det-serial.txt" "$dir/det-parallel.txt"
  "$dir/tools/gcfuzz/gcfuzz" --seed-corpus --gc-threads 4 --out "$dir"
}

# The rootcheck lint needs no build at all; fail fast on it.
echo "==> rootcheck"
python3 tools/rootcheck/rootcheck.py --root . src tests
python3 tools/rootcheck/rootcheck.py --self-test tools/rootcheck/fixtures

run_suite release -DCMAKE_BUILD_TYPE=Release

if [ "$STRESS" = 1 ]; then
  run_suite stress -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGENGC_STRESS=ON
fi

if [ "$ASAN" = 1 ]; then
  run_suite asan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGENGC_SAN=address,undefined
fi

if [ "$TSAN" = 1 ]; then
  run_suite tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGENGC_SAN=thread
fi

echo "==> all checks passed"

#!/usr/bin/env python3
"""Gates the allocation profiler's fast-path cost on BM_AllocYoung.

bench_ablation runs BM_AllocYoung twice — Arg(0) with sampling off,
Arg(1) with sampling on at the default 64 KiB interval. This script
compares the two in a Google Benchmark JSON file and fails when the
enabled run costs more than the given percentage (the repo's
observability budget: <= 2%).

    bench_ablation --benchmark_filter='BM_AllocYoung' \
        --benchmark_repetitions=5 --benchmark_format=json > out.json
    python3 scripts/check_profiler_overhead.py out.json 2.0

Uses the minimum cpu_time over repetitions of each variant: the min is
the least noise-sensitive location statistic for a microbenchmark (any
scheduler interference only ever inflates a repetition).
"""

import json
import sys


def best_time(benchmarks, name):
    times = [b["cpu_time"] for b in benchmarks
             if b.get("name", "").startswith(name)
             and b.get("run_type", "iteration") == "iteration"]
    if not times:
        raise SystemExit(f"check_profiler_overhead: no '{name}' rows")
    return min(times)


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    with open(sys.argv[1]) as f:
        data = json.load(f)
    limit_pct = float(sys.argv[2])
    benchmarks = data.get("benchmarks", [])
    off = best_time(benchmarks, "BM_AllocYoung/0")
    on = best_time(benchmarks, "BM_AllocYoung/1")
    overhead_pct = (on - off) / off * 100.0
    print(f"profiler overhead on BM_AllocYoung: {overhead_pct:+.2f}% "
          f"(off {off:.2f}ns, on {on:.2f}ns, limit {limit_pct:.1f}%)")
    if overhead_pct > limit_pct:
        raise SystemExit("check_profiler_overhead: over budget")


if __name__ == "__main__":
    main()

#!/usr/bin/env bash
# Runs the benchmark suite and emits one Google Benchmark JSON file per
# binary under the output directory (default bench-results/).
#
#   scripts/bench.sh                 # all benchmarks, Release build
#   scripts/bench.sh bench_tconc     # a subset, by target name
#   scripts/bench.sh --loadgen       # shard-count scaling sweep of the
#                                    # runtime load driver (1..8 shards,
#                                    # open-loop sessions); one JSON per
#                                    # shard count lands in bench-results/
#   scripts/bench.sh --summarize     # no run: just (re)build the
#                                    # BENCH_<date>.json summary from
#                                    # whatever is in bench-results/
#   BENCH_OUT=/tmp/run1 scripts/bench.sh
#
# Every invocation ends by aggregating the per-binary JSON files into a
# single BENCH_<YYYY-MM-DD>.json at the repo root: one row per
# benchmark with its timing plus any gc_* collector counters, and
# fleet-wide pause percentiles. That file is the snapshot DESIGN.md's
# experiment index points at; commit it when the numbers move.
#
# JSON output (--benchmark_format=json) is the machine-readable record
# DESIGN.md's experiment index expects; pass the files to
# benchmark/tools/compare.py for A/B runs.
#
# GC-heavy benchmarks attach a GcPauseRecorder (bench/BenchCommon.h)
# and publish collector counters into each entry's "counters" object:
# gc_collections, gc_full_collections, gc_bytes_copied,
# gc_objects_promoted, gc_segments_freed, gc_total_pause_ns,
# gc_barriers_executed, gc_barriers_elided, the parallel-scavenge
# counters gc_parallel_workers / gc_parallel_steal_attempts /
# gc_parallel_steal_hits / gc_parallel_max_worker_bytes /
# gc_parallel_imbalance, and the per-run pause
# percentiles gc_pause_p50_ns / gc_pause_p99_ns / gc_pause_max_ns. They land in the same JSON files automatically;
# e.g.:  jq '.benchmarks[] | {name, gc_pause_p99_ns: .gc_pause_p99_ns}'

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-bench-results}"
DIR="${BENCH_BUILD:-build-bench}"

summarize() {
  python3 - "$OUT" <<'PYEOF'
import glob, json, os, sys, datetime

out_dir = sys.argv[1]
rows, totals, pauses = [], {}, {"p50": [], "p99": [], "max": []}
files_read, files_bad = 0, 0
GC_KEYS = ("gc_collections", "gc_full_collections", "gc_bytes_copied",
           "gc_objects_promoted", "gc_segments_freed", "gc_total_pause_ns",
           "gc_barriers_executed", "gc_barriers_elided",
           "gc_parallel_steal_attempts", "gc_parallel_steal_hits")

for path in sorted(glob.glob(os.path.join(out_dir, "*.json"))):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench.sh: skipping malformed {path}: {e}", file=sys.stderr)
        files_bad += 1
        continue
    files_read += 1
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue  # mean/median/stddev rows duplicate the raw runs
        row = {
            "file": os.path.splitext(os.path.basename(path))[0],
            "name": b.get("name"),
            "real_time": b.get("real_time"),
            "cpu_time": b.get("cpu_time"),
            "time_unit": b.get("time_unit"),
            "iterations": b.get("iterations"),
        }
        for key, val in b.items():
            if key.startswith("gc_"):
                row[key] = val
                if key in GC_KEYS:
                    totals[key] = totals.get(key, 0) + val
        for pct in pauses:
            key = f"gc_pause_{pct}_ns"
            if key in b:
                pauses[pct].append(b[key])
        rows.append(row)

summary = {
    "date": datetime.date.today().isoformat(),
    "source": out_dir,
    "files": files_read,
    "files_skipped": files_bad,
    "gc_totals": totals,
    # Fleet-wide view over every benchmark that attached a
    # GcPauseRecorder: worst and median of the per-benchmark
    # percentiles.
    "pause_percentiles_ns": {
        pct: {
            "max": max(vals),
            "median": sorted(vals)[len(vals) // 2],
            "benchmarks": len(vals),
        } if vals else None
        for pct, vals in pauses.items()
    },
    "benchmarks": rows,
}
name = f"BENCH_{summary['date']}.json"
with open(name, "w") as f:
    json.dump(summary, f, indent=2)
    f.write("\n")
print(f"==> {name}: {len(rows)} benchmarks from {files_read} files"
      + (f" ({files_bad} skipped)" if files_bad else ""))
PYEOF
}

if [ "${1:-}" = "--summarize" ]; then
  summarize
  exit 0
fi

if [ "${1:-}" = "--loadgen" ]; then
  # Shard-count scaling sweep: the same per-shard session load at 1, 2,
  # 4, 8 shards, open-loop (think time between sessions) so aggregate
  # throughput reflects shard parallelism rather than core count —
  # see EXPERIMENTS.md's shard-scaling walkthrough for reading the
  # numbers on small machines. Each run's JSON is Google-Benchmark-
  # shaped, so the summarize step folds the gc_* counters and pause
  # percentiles in alongside the microbenchmarks.
  LG_SESSIONS="${LG_SESSIONS:-16}"
  LG_OPS="${LG_OPS:-300}"
  LG_THINK_US="${LG_THINK_US:-1000}"
  LG_SEED="${LG_SEED:-11}"
  cmake -B "$DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$DIR" -j --target loadgen >/dev/null
  mkdir -p "$OUT"
  for shards in 1 2 4 8; do
    echo "==> loadgen: $shards shard(s)"
    "$DIR/tools/loadgen/loadgen" \
      --shards "$shards" --sessions "$LG_SESSIONS" --ops "$LG_OPS" \
      --seed "$LG_SEED" --think-time-us "$LG_THINK_US" --fail-rate 5 \
      --json "$OUT/loadgen_shards${shards}.json"
  done
  echo "==> results in $OUT/"
  summarize
  exit 0
fi

cmake -B "$DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$DIR" -j >/dev/null

BENCHES=("$@")
if [ ${#BENCHES[@]} -eq 0 ]; then
  for bin in "$DIR"/bench/bench_*; do
    [ -x "$bin" ] && BENCHES+=("$(basename "$bin")")
  done
fi

mkdir -p "$OUT"
for name in "${BENCHES[@]}"; do
  bin="$DIR/bench/$name"
  if [ ! -x "$bin" ]; then
    echo "no such benchmark binary: $bin" >&2
    exit 2
  fi
  echo "==> $name"
  "$bin" --benchmark_format=json --benchmark_out="$OUT/$name.json" \
         --benchmark_out_format=json
done

echo "==> results in $OUT/"
summarize

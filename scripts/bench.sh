#!/usr/bin/env bash
# Runs the benchmark suite and emits one Google Benchmark JSON file per
# binary under the output directory (default bench-results/).
#
#   scripts/bench.sh                 # all benchmarks, Release build
#   scripts/bench.sh bench_tconc     # a subset, by target name
#   BENCH_OUT=/tmp/run1 scripts/bench.sh
#
# JSON output (--benchmark_format=json) is the machine-readable record
# DESIGN.md's experiment index expects; pass the files to
# benchmark/tools/compare.py for A/B runs.
#
# GC-heavy benchmarks attach a GcPauseRecorder (bench/BenchCommon.h)
# and publish collector counters into each entry's "counters" object:
# gc_collections, gc_full_collections, gc_bytes_copied,
# gc_objects_promoted, gc_segments_freed, gc_total_pause_ns, and the
# per-run pause percentiles gc_pause_p50_ns / gc_pause_p99_ns /
# gc_pause_max_ns. They land in the same JSON files automatically;
# e.g.:  jq '.benchmarks[] | {name, gc_pause_p99_ns: .gc_pause_p99_ns}'

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-bench-results}"
DIR="${BENCH_BUILD:-build-bench}"

cmake -B "$DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$DIR" -j >/dev/null

BENCHES=("$@")
if [ ${#BENCHES[@]} -eq 0 ]; then
  for bin in "$DIR"/bench/bench_*; do
    [ -x "$bin" ] && BENCHES+=("$(basename "$bin")")
  done
fi

mkdir -p "$OUT"
for name in "${BENCHES[@]}"; do
  bin="$DIR/bench/$name"
  if [ ! -x "$bin" ]; then
    echo "no such benchmark binary: $bin" >&2
    exit 2
  fi
  echo "==> $name"
  "$bin" --benchmark_format=json --benchmark_out="$OUT/$name.json" \
         --benchmark_out_format=json
done

echo "==> results in $OUT/"

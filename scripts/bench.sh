#!/usr/bin/env bash
# Runs the benchmark suite and emits one Google Benchmark JSON file per
# binary under the output directory (default bench-results/).
#
#   scripts/bench.sh                 # all benchmarks, Release build
#   scripts/bench.sh bench_tconc     # a subset, by target name
#   scripts/bench.sh --loadgen       # shard-count scaling sweep of the
#                                    # runtime load driver (1..8 shards,
#                                    # open-loop sessions); one JSON per
#                                    # shard count lands in bench-results/
#   scripts/bench.sh --summarize     # no run: just (re)build the
#                                    # BENCH_<date>.json summary from
#                                    # whatever is in bench-results/
#   BENCH_OUT=/tmp/run1 scripts/bench.sh
#
# Every invocation ends by aggregating the per-binary JSON files into a
# single BENCH_<YYYY-MM-DD>.json at the repo root: one row per
# benchmark with its timing plus any gc_* collector counters, and
# fleet-wide pause percentiles. That file is the snapshot DESIGN.md's
# experiment index points at; commit it when the numbers move.
#
# JSON output (--benchmark_format=json) is the machine-readable record
# DESIGN.md's experiment index expects; pass the files to
# benchmark/tools/compare.py for A/B runs.
#
# GC-heavy benchmarks attach a GcPauseRecorder (bench/BenchCommon.h)
# and publish collector counters into each entry's "counters" object:
# gc_* totals, gc_pause_{p50,p99,p999,max}_ns HDR percentiles, and —
# from loadgen — latency_op_*, mmu_*, slo_*, alloc_sampled_sites and
# executor_* keys. The summarizer (scripts/bench_summarize.py) derives
# every key from the JSON itself, so new counters appear in
# BENCH_<date>.json without editing any script; e.g.:
#   jq '.benchmarks[] | {name, gc_pause_p99_ns: .gc_pause_p99_ns}'

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-bench-results}"
DIR="${BENCH_BUILD:-build-bench}"

summarize() {
  python3 scripts/bench_summarize.py "$OUT"
}

if [ "${1:-}" = "--summarize" ]; then
  summarize
  exit 0
fi

if [ "${1:-}" = "--loadgen" ]; then
  # Shard-count scaling sweep: the same per-shard session load at 1, 2,
  # 4, 8 shards, open-loop (think time between sessions) so aggregate
  # throughput reflects shard parallelism rather than core count —
  # see EXPERIMENTS.md's shard-scaling walkthrough for reading the
  # numbers on small machines. Each run's JSON is Google-Benchmark-
  # shaped, so the summarize step folds the gc_* counters and pause
  # percentiles in alongside the microbenchmarks.
  LG_SESSIONS="${LG_SESSIONS:-16}"
  LG_OPS="${LG_OPS:-300}"
  LG_THINK_US="${LG_THINK_US:-1000}"
  LG_SEED="${LG_SEED:-11}"
  cmake -B "$DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$DIR" -j --target loadgen >/dev/null
  mkdir -p "$OUT"
  for shards in 1 2 4 8; do
    echo "==> loadgen: $shards shard(s)"
    "$DIR/tools/loadgen/loadgen" \
      --shards "$shards" --sessions "$LG_SESSIONS" --ops "$LG_OPS" \
      --seed "$LG_SEED" --think-time-us "$LG_THINK_US" --fail-rate 5 \
      --json "$OUT/loadgen_shards${shards}.json"
  done
  # Scoped A/B leg: the same 4-shard load with every session inside a
  # request scope. Diff loadgen_shards4.json against this file's
  # gc_collections / gc_pause_* / gc_scope_* keys (EXPERIMENTS.md's
  # scoped-vs-unscoped walkthrough reads the pair).
  echo "==> loadgen: 4 shards, scoped sessions"
  "$DIR/tools/loadgen/loadgen" \
    --shards 4 --sessions "$LG_SESSIONS" --ops "$LG_OPS" \
    --seed "$LG_SEED" --think-time-us "$LG_THINK_US" --fail-rate 5 \
    --scoped --json "$OUT/loadgen_shards4_scoped.json"
  # Donation A/B leg: the same 8-shard load with bulk message payloads
  # (--payload-bytes), deep-copied vs segment-donated. Diff the pair's
  # throughput_ops_per_sec / latency_op_* / transfer_* keys
  # (EXPERIMENTS.md's zero-copy transfer walkthrough reads them).
  LG_PAYLOAD="${LG_PAYLOAD:-16384}"
  for donate in off on; do
    echo "==> loadgen: 8 shards, ${LG_PAYLOAD}B payloads, donate $donate"
    "$DIR/tools/loadgen/loadgen" \
      --shards 8 --sessions "$LG_SESSIONS" --ops "$LG_OPS" \
      --seed "$LG_SEED" --think-time-us "$LG_THINK_US" --fail-rate 5 \
      --payload-bytes "$LG_PAYLOAD" --donate "$donate" \
      --json "$OUT/loadgen_shards8_donate_${donate}.json"
  done
  echo "==> results in $OUT/"
  summarize
  exit 0
fi

cmake -B "$DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$DIR" -j >/dev/null

BENCHES=("$@")
if [ ${#BENCHES[@]} -eq 0 ]; then
  for bin in "$DIR"/bench/bench_*; do
    [ -x "$bin" ] && BENCHES+=("$(basename "$bin")")
  done
fi

mkdir -p "$OUT"
for name in "${BENCHES[@]}"; do
  bin="$DIR/bench/$name"
  if [ ! -x "$bin" ]; then
    echo "no such benchmark binary: $bin" >&2
    exit 2
  fi
  echo "==> $name"
  "$bin" --benchmark_format=json --benchmark_out="$OUT/$name.json" \
         --benchmark_out_format=json
done

echo "==> results in $OUT/"
summarize

file(REMOVE_RECURSE
  "CMakeFiles/bench_weaklist_baseline.dir/bench_weaklist_baseline.cpp.o"
  "CMakeFiles/bench_weaklist_baseline.dir/bench_weaklist_baseline.cpp.o.d"
  "bench_weaklist_baseline"
  "bench_weaklist_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weaklist_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

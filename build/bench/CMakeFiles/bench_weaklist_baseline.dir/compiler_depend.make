# Empty compiler generated dependencies file for bench_weaklist_baseline.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_tconc.
# This may be replaced when dependencies are built.

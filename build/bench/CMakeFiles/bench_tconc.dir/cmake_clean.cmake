file(REMOVE_RECURSE
  "CMakeFiles/bench_tconc.dir/bench_tconc.cpp.o"
  "CMakeFiles/bench_tconc.dir/bench_tconc.cpp.o.d"
  "bench_tconc"
  "bench_tconc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tconc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

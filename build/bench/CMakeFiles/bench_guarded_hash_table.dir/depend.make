# Empty dependencies file for bench_guarded_hash_table.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_guarded_hash_table.dir/bench_guarded_hash_table.cpp.o"
  "CMakeFiles/bench_guarded_hash_table.dir/bench_guarded_hash_table.cpp.o.d"
  "bench_guarded_hash_table"
  "bench_guarded_hash_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_guarded_hash_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_mutator_overhead.
# This may be replaced when dependencies are built.

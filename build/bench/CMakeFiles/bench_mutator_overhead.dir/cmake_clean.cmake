file(REMOVE_RECURSE
  "CMakeFiles/bench_mutator_overhead.dir/bench_mutator_overhead.cpp.o"
  "CMakeFiles/bench_mutator_overhead.dir/bench_mutator_overhead.cpp.o.d"
  "bench_mutator_overhead"
  "bench_mutator_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mutator_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

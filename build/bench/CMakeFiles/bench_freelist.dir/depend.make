# Empty dependencies file for bench_freelist.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_freelist.dir/bench_freelist.cpp.o"
  "CMakeFiles/bench_freelist.dir/bench_freelist.cpp.o.d"
  "bench_freelist"
  "bench_freelist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_freelist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_generation_friendly.cpp" "bench/CMakeFiles/bench_generation_friendly.dir/bench_generation_friendly.cpp.o" "gcc" "bench/CMakeFiles/bench_generation_friendly.dir/bench_generation_friendly.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gengc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/scheme/CMakeFiles/gengc_scheme.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/gengc_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/gengc_heap.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for bench_generation_friendly.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_generation_friendly.dir/bench_generation_friendly.cpp.o"
  "CMakeFiles/bench_generation_friendly.dir/bench_generation_friendly.cpp.o.d"
  "bench_generation_friendly"
  "bench_generation_friendly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_generation_friendly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

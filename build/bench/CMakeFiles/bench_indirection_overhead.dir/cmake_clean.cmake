file(REMOVE_RECURSE
  "CMakeFiles/bench_indirection_overhead.dir/bench_indirection_overhead.cpp.o"
  "CMakeFiles/bench_indirection_overhead.dir/bench_indirection_overhead.cpp.o.d"
  "bench_indirection_overhead"
  "bench_indirection_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_indirection_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

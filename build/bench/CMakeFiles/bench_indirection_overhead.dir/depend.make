# Empty dependencies file for bench_indirection_overhead.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_transport_guardian.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_transport_guardian.dir/bench_transport_guardian.cpp.o"
  "CMakeFiles/bench_transport_guardian.dir/bench_transport_guardian.cpp.o.d"
  "bench_transport_guardian"
  "bench_transport_guardian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transport_guardian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_gc_throughput.
# This may be replaced when dependencies are built.

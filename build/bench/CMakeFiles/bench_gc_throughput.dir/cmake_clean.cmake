file(REMOVE_RECURSE
  "CMakeFiles/bench_gc_throughput.dir/bench_gc_throughput.cpp.o"
  "CMakeFiles/bench_gc_throughput.dir/bench_gc_throughput.cpp.o.d"
  "bench_gc_throughput"
  "bench_gc_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gc_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

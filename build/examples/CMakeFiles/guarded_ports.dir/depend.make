# Empty dependencies file for guarded_ports.
# This may be replaced when dependencies are built.

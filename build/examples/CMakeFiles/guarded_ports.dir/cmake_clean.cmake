file(REMOVE_RECURSE
  "CMakeFiles/guarded_ports.dir/guarded_ports.cpp.o"
  "CMakeFiles/guarded_ports.dir/guarded_ports.cpp.o.d"
  "guarded_ports"
  "guarded_ports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guarded_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/transport_guardian.dir/transport_guardian.cpp.o"
  "CMakeFiles/transport_guardian.dir/transport_guardian.cpp.o.d"
  "transport_guardian"
  "transport_guardian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_guardian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

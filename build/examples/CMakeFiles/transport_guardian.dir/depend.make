# Empty dependencies file for transport_guardian.
# This may be replaced when dependencies are built.

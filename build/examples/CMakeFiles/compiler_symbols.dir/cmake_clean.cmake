file(REMOVE_RECURSE
  "CMakeFiles/compiler_symbols.dir/compiler_symbols.cpp.o"
  "CMakeFiles/compiler_symbols.dir/compiler_symbols.cpp.o.d"
  "compiler_symbols"
  "compiler_symbols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_symbols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for compiler_symbols.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/external_resources.dir/external_resources.cpp.o"
  "CMakeFiles/external_resources.dir/external_resources.cpp.o.d"
  "external_resources"
  "external_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for external_resources.
# This may be replaced when dependencies are built.

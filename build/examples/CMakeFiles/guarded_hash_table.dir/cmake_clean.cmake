file(REMOVE_RECURSE
  "CMakeFiles/guarded_hash_table.dir/guarded_hash_table.cpp.o"
  "CMakeFiles/guarded_hash_table.dir/guarded_hash_table.cpp.o.d"
  "guarded_hash_table"
  "guarded_hash_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guarded_hash_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for guarded_hash_table.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gc_tests.dir/agent_guardian_test.cpp.o"
  "CMakeFiles/gc_tests.dir/agent_guardian_test.cpp.o.d"
  "CMakeFiles/gc_tests.dir/collector_test.cpp.o"
  "CMakeFiles/gc_tests.dir/collector_test.cpp.o.d"
  "CMakeFiles/gc_tests.dir/guardian_test.cpp.o"
  "CMakeFiles/gc_tests.dir/guardian_test.cpp.o.d"
  "CMakeFiles/gc_tests.dir/heap_basic_test.cpp.o"
  "CMakeFiles/gc_tests.dir/heap_basic_test.cpp.o.d"
  "CMakeFiles/gc_tests.dir/heap_usage_test.cpp.o"
  "CMakeFiles/gc_tests.dir/heap_usage_test.cpp.o.d"
  "CMakeFiles/gc_tests.dir/property_test.cpp.o"
  "CMakeFiles/gc_tests.dir/property_test.cpp.o.d"
  "CMakeFiles/gc_tests.dir/substrate_test.cpp.o"
  "CMakeFiles/gc_tests.dir/substrate_test.cpp.o.d"
  "CMakeFiles/gc_tests.dir/tconc_test.cpp.o"
  "CMakeFiles/gc_tests.dir/tconc_test.cpp.o.d"
  "CMakeFiles/gc_tests.dir/tenure_test.cpp.o"
  "CMakeFiles/gc_tests.dir/tenure_test.cpp.o.d"
  "CMakeFiles/gc_tests.dir/verifier_test.cpp.o"
  "CMakeFiles/gc_tests.dir/verifier_test.cpp.o.d"
  "CMakeFiles/gc_tests.dir/weak_pair_test.cpp.o"
  "CMakeFiles/gc_tests.dir/weak_pair_test.cpp.o.d"
  "gc_tests"
  "gc_tests.pdb"
  "gc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gc/agent_guardian_test.cpp" "tests/gc/CMakeFiles/gc_tests.dir/agent_guardian_test.cpp.o" "gcc" "tests/gc/CMakeFiles/gc_tests.dir/agent_guardian_test.cpp.o.d"
  "/root/repo/tests/gc/collector_test.cpp" "tests/gc/CMakeFiles/gc_tests.dir/collector_test.cpp.o" "gcc" "tests/gc/CMakeFiles/gc_tests.dir/collector_test.cpp.o.d"
  "/root/repo/tests/gc/guardian_test.cpp" "tests/gc/CMakeFiles/gc_tests.dir/guardian_test.cpp.o" "gcc" "tests/gc/CMakeFiles/gc_tests.dir/guardian_test.cpp.o.d"
  "/root/repo/tests/gc/heap_basic_test.cpp" "tests/gc/CMakeFiles/gc_tests.dir/heap_basic_test.cpp.o" "gcc" "tests/gc/CMakeFiles/gc_tests.dir/heap_basic_test.cpp.o.d"
  "/root/repo/tests/gc/heap_usage_test.cpp" "tests/gc/CMakeFiles/gc_tests.dir/heap_usage_test.cpp.o" "gcc" "tests/gc/CMakeFiles/gc_tests.dir/heap_usage_test.cpp.o.d"
  "/root/repo/tests/gc/property_test.cpp" "tests/gc/CMakeFiles/gc_tests.dir/property_test.cpp.o" "gcc" "tests/gc/CMakeFiles/gc_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/gc/substrate_test.cpp" "tests/gc/CMakeFiles/gc_tests.dir/substrate_test.cpp.o" "gcc" "tests/gc/CMakeFiles/gc_tests.dir/substrate_test.cpp.o.d"
  "/root/repo/tests/gc/tconc_test.cpp" "tests/gc/CMakeFiles/gc_tests.dir/tconc_test.cpp.o" "gcc" "tests/gc/CMakeFiles/gc_tests.dir/tconc_test.cpp.o.d"
  "/root/repo/tests/gc/tenure_test.cpp" "tests/gc/CMakeFiles/gc_tests.dir/tenure_test.cpp.o" "gcc" "tests/gc/CMakeFiles/gc_tests.dir/tenure_test.cpp.o.d"
  "/root/repo/tests/gc/verifier_test.cpp" "tests/gc/CMakeFiles/gc_tests.dir/verifier_test.cpp.o" "gcc" "tests/gc/CMakeFiles/gc_tests.dir/verifier_test.cpp.o.d"
  "/root/repo/tests/gc/weak_pair_test.cpp" "tests/gc/CMakeFiles/gc_tests.dir/weak_pair_test.cpp.o" "gcc" "tests/gc/CMakeFiles/gc_tests.dir/weak_pair_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gengc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/scheme/CMakeFiles/gengc_scheme.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/gengc_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/gengc_heap.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

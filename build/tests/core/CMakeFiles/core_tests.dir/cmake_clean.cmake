file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/eq_hash_table_test.cpp.o"
  "CMakeFiles/core_tests.dir/eq_hash_table_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/guarded_hash_table_test.cpp.o"
  "CMakeFiles/core_tests.dir/guarded_hash_table_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/list_ops_test.cpp.o"
  "CMakeFiles/core_tests.dir/list_ops_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/transport_guardian_test.cpp.o"
  "CMakeFiles/core_tests.dir/transport_guardian_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

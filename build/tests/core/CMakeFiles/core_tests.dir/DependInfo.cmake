
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/eq_hash_table_test.cpp" "tests/core/CMakeFiles/core_tests.dir/eq_hash_table_test.cpp.o" "gcc" "tests/core/CMakeFiles/core_tests.dir/eq_hash_table_test.cpp.o.d"
  "/root/repo/tests/core/guarded_hash_table_test.cpp" "tests/core/CMakeFiles/core_tests.dir/guarded_hash_table_test.cpp.o" "gcc" "tests/core/CMakeFiles/core_tests.dir/guarded_hash_table_test.cpp.o.d"
  "/root/repo/tests/core/list_ops_test.cpp" "tests/core/CMakeFiles/core_tests.dir/list_ops_test.cpp.o" "gcc" "tests/core/CMakeFiles/core_tests.dir/list_ops_test.cpp.o.d"
  "/root/repo/tests/core/transport_guardian_test.cpp" "tests/core/CMakeFiles/core_tests.dir/transport_guardian_test.cpp.o" "gcc" "tests/core/CMakeFiles/core_tests.dir/transport_guardian_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gengc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/gengc_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/gengc_heap.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

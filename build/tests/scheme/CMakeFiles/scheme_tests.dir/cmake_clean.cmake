file(REMOVE_RECURSE
  "CMakeFiles/scheme_tests.dir/compiler_test.cpp.o"
  "CMakeFiles/scheme_tests.dir/compiler_test.cpp.o.d"
  "CMakeFiles/scheme_tests.dir/interpreter_test.cpp.o"
  "CMakeFiles/scheme_tests.dir/interpreter_test.cpp.o.d"
  "CMakeFiles/scheme_tests.dir/paper_examples_test.cpp.o"
  "CMakeFiles/scheme_tests.dir/paper_examples_test.cpp.o.d"
  "CMakeFiles/scheme_tests.dir/printer_test.cpp.o"
  "CMakeFiles/scheme_tests.dir/printer_test.cpp.o.d"
  "CMakeFiles/scheme_tests.dir/scheme_gc_stress_test.cpp.o"
  "CMakeFiles/scheme_tests.dir/scheme_gc_stress_test.cpp.o.d"
  "CMakeFiles/scheme_tests.dir/vm_test.cpp.o"
  "CMakeFiles/scheme_tests.dir/vm_test.cpp.o.d"
  "scheme_tests"
  "scheme_tests.pdb"
  "scheme_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

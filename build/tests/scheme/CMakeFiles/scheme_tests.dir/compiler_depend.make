# Empty compiler generated dependencies file for scheme_tests.
# This may be replaced when dependencies are built.

# Empty dependencies file for resource_tests.
# This may be replaced when dependencies are built.

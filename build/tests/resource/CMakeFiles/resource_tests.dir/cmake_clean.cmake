file(REMOVE_RECURSE
  "CMakeFiles/resource_tests.dir/resource_test.cpp.o"
  "CMakeFiles/resource_tests.dir/resource_test.cpp.o.d"
  "resource_tests"
  "resource_tests.pdb"
  "resource_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/gengc_heap.dir/Arena.cpp.o"
  "CMakeFiles/gengc_heap.dir/Arena.cpp.o.d"
  "libgengc_heap.a"
  "libgengc_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gengc_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libgengc_heap.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/gengc_gc.dir/Collector.cpp.o"
  "CMakeFiles/gengc_gc.dir/Collector.cpp.o.d"
  "CMakeFiles/gengc_gc.dir/Heap.cpp.o"
  "CMakeFiles/gengc_gc.dir/Heap.cpp.o.d"
  "CMakeFiles/gengc_gc.dir/Verify.cpp.o"
  "CMakeFiles/gengc_gc.dir/Verify.cpp.o.d"
  "libgengc_gc.a"
  "libgengc_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gengc_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

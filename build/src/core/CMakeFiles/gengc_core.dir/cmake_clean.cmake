file(REMOVE_RECURSE
  "CMakeFiles/gengc_core.dir/EqHashTable.cpp.o"
  "CMakeFiles/gengc_core.dir/EqHashTable.cpp.o.d"
  "CMakeFiles/gengc_core.dir/GuardedHashTable.cpp.o"
  "CMakeFiles/gengc_core.dir/GuardedHashTable.cpp.o.d"
  "libgengc_core.a"
  "libgengc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gengc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

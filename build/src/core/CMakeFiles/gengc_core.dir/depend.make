# Empty dependencies file for gengc_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libgengc_core.a"
)

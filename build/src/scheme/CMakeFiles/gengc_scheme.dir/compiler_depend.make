# Empty compiler generated dependencies file for gengc_scheme.
# This may be replaced when dependencies are built.

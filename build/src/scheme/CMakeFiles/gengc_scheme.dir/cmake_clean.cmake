file(REMOVE_RECURSE
  "CMakeFiles/gengc_scheme.dir/Compiler.cpp.o"
  "CMakeFiles/gengc_scheme.dir/Compiler.cpp.o.d"
  "CMakeFiles/gengc_scheme.dir/Disassembler.cpp.o"
  "CMakeFiles/gengc_scheme.dir/Disassembler.cpp.o.d"
  "CMakeFiles/gengc_scheme.dir/Interpreter.cpp.o"
  "CMakeFiles/gengc_scheme.dir/Interpreter.cpp.o.d"
  "CMakeFiles/gengc_scheme.dir/Primitives.cpp.o"
  "CMakeFiles/gengc_scheme.dir/Primitives.cpp.o.d"
  "CMakeFiles/gengc_scheme.dir/Printer.cpp.o"
  "CMakeFiles/gengc_scheme.dir/Printer.cpp.o.d"
  "CMakeFiles/gengc_scheme.dir/Reader.cpp.o"
  "CMakeFiles/gengc_scheme.dir/Reader.cpp.o.d"
  "CMakeFiles/gengc_scheme.dir/VM.cpp.o"
  "CMakeFiles/gengc_scheme.dir/VM.cpp.o.d"
  "libgengc_scheme.a"
  "libgengc_scheme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gengc_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libgengc_scheme.a"
)

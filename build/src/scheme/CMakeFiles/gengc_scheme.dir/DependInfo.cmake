
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scheme/Compiler.cpp" "src/scheme/CMakeFiles/gengc_scheme.dir/Compiler.cpp.o" "gcc" "src/scheme/CMakeFiles/gengc_scheme.dir/Compiler.cpp.o.d"
  "/root/repo/src/scheme/Disassembler.cpp" "src/scheme/CMakeFiles/gengc_scheme.dir/Disassembler.cpp.o" "gcc" "src/scheme/CMakeFiles/gengc_scheme.dir/Disassembler.cpp.o.d"
  "/root/repo/src/scheme/Interpreter.cpp" "src/scheme/CMakeFiles/gengc_scheme.dir/Interpreter.cpp.o" "gcc" "src/scheme/CMakeFiles/gengc_scheme.dir/Interpreter.cpp.o.d"
  "/root/repo/src/scheme/Primitives.cpp" "src/scheme/CMakeFiles/gengc_scheme.dir/Primitives.cpp.o" "gcc" "src/scheme/CMakeFiles/gengc_scheme.dir/Primitives.cpp.o.d"
  "/root/repo/src/scheme/Printer.cpp" "src/scheme/CMakeFiles/gengc_scheme.dir/Printer.cpp.o" "gcc" "src/scheme/CMakeFiles/gengc_scheme.dir/Printer.cpp.o.d"
  "/root/repo/src/scheme/Reader.cpp" "src/scheme/CMakeFiles/gengc_scheme.dir/Reader.cpp.o" "gcc" "src/scheme/CMakeFiles/gengc_scheme.dir/Reader.cpp.o.d"
  "/root/repo/src/scheme/VM.cpp" "src/scheme/CMakeFiles/gengc_scheme.dir/VM.cpp.o" "gcc" "src/scheme/CMakeFiles/gengc_scheme.dir/VM.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gengc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/gengc_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/gengc_heap.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

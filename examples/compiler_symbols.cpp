//===- examples/compiler_symbols.cpp - Symbol tables and metadata --------===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
// Two of the paper's motivations in one compiler-shaped workload:
//
//  * the weak symbol table ("the elimination of unnecessary oblist
//    entries, as proposed by Friedman and Wise", which Chez Scheme
//    implements): identifiers interned while compiling one unit are
//    dropped from the table when the unit's code is discarded;
//  * a guarded hash table keyed by symbols ("hash tables can be used to
//    represent symbol tables") for per-identifier metadata, whose
//    entries disappear with their identifiers -- the values too, with
//    no table scan.
//
// The "compiler" tokenizes little expression strings, interns each
// identifier, and records a use-count per identifier.
//
//===----------------------------------------------------------------------===//

#include "core/GuardedHashTable.h"
#include "gc/Roots.h"

#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

using namespace gengc;

namespace {

/// Tokenizes identifiers out of \p Source, interning each one.
/// Returns the interned symbols (rooted by the caller's vector).
void internIdentifiers(Heap &H, const std::string &Source,
                       RootVector &Out) {
  size_t I = 0;
  while (I < Source.size()) {
    if (!std::isalpha(static_cast<unsigned char>(Source[I]))) {
      ++I;
      continue;
    }
    size_t Start = I;
    while (I < Source.size() &&
           std::isalnum(static_cast<unsigned char>(Source[I])))
      ++I;
    Out.push_back(H.intern(Source.substr(Start, I - Start)));
  }
}

/// One compilation unit's identifiers and its metadata updates.
void compileUnit(Heap &H, GuardedHashTable &UseCounts, int UnitId,
                 size_t &InternedCount) {
  // Each unit uses a mix of unit-local and shared identifiers.
  std::string Source;
  for (int I = 0; I != 20; ++I)
    Source += "local" + std::to_string(UnitId) + "v" + std::to_string(I) +
              " + shared" + std::to_string(I % 4) + "; ";
  RootVector Symbols(H);
  internIdentifiers(H, Source, Symbols);
  InternedCount = Symbols.size();
  // Metadata values are boxes so counts are updatable in place; when an
  // identifier dies, its box (the value) becomes reclaimable along with
  // the entry -- exactly what plain weak keys cannot provide.
  for (size_t I = 0; I != Symbols.size(); ++I) {
    Value Existing = UseCounts.lookup(Symbols[I]);
    if (Existing.isUnbound()) {
      Root CountBox(H, H.makeBox(Value::fixnum(1)));
      UseCounts.access(Symbols[I], CountBox.get());
    } else {
      H.boxSet(Existing,
               Value::fixnum(objectField(Existing, 0).asFixnum() + 1));
    }
  }
  // All unit-local symbols are dropped at scope exit; "shared*" symbols
  // get re-interned (same objects) by the next unit.
}

} // namespace

int main() {
  HeapConfig C;
  C.AutoCollect = false;
  Heap H(C);
  GuardedHashTable UseCounts(H, 128);

  std::printf("== compiler symbol tables: weak interning + guarded "
              "metadata ==\n\n");
  std::printf("%6s  %18s  %16s\n", "unit", "symbols in heap*",
              "metadata entries");
  std::printf("        (*symbol-table entries after full GC)\n");

  // Keep the shared identifiers alive across units, as a real compiler
  // keeps exported names.
  RootVector SharedNames(H);
  for (int I = 0; I != 4; ++I)
    SharedNames.push_back(H.intern("shared" + std::to_string(I)));

  for (int Unit = 0; Unit != 6; ++Unit) {
    size_t Interned = 0;
    compileUnit(H, UseCounts, Unit, Interned);
    // The unit is "compiled"; its local identifiers are no longer
    // referenced. Collect and let the weak symbol table and the
    // guarded metadata table shed them.
    uint64_t Dropped = 0;
    H.collectFull();
    Dropped += H.lastStats().SymbolsDropped;
    H.collectFull();
    Dropped += H.lastStats().SymbolsDropped;
    UseCounts.removeDroppedEntries();
    std::printf("%6d  %18llu  %16zu\n", Unit,
                static_cast<unsigned long long>(Dropped),
                UseCounts.entryCount());
  }

  std::printf("\nper full GC, the weak symbol table dropped the dead "
              "unit-local\nidentifiers (Friedman-Wise oblist clean-up); "
              "the guarded metadata\ntable tracked them, keeping only "
              "the %zu shared entries alive.\n",
              UseCounts.entryCount());
  H.verifyHeap();
  return 0;
}

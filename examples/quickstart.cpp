//===- examples/quickstart.cpp - Guardians in five minutes ---------------===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
// Walks through the Section 3 interface in C++: create a heap and a
// guardian, register objects, drop them, collect, and retrieve them for
// clean-up -- entirely under program control.
//
//===----------------------------------------------------------------------===//

#include "core/Guardian.h"
#include "gc/Heap.h"
#include "gc/Roots.h"
#include "scheme/Printer.h"

#include <cstdio>

using namespace gengc;

int main() {
  // A heap with the paper's default setup: 4 generations, automatic
  // minor collections as allocation proceeds.
  Heap H;

  std::printf("== gengc quickstart: the Section 3 transcript ==\n\n");

  // > (define G (make-guardian))
  Guardian G(H);

  // > (define x (cons 'a 'b))
  // Each allocation gets its own rooted home before the next one runs:
  // nesting two allocating calls in one expression would hold the first
  // result as a bare temporary across the second's safepoint, the exact
  // bug GENGC_STRESS exists to catch.
  Root A(H, H.intern("a"));
  Root B(H, H.intern("b"));
  Root X(H, H.cons(A.get(), B.get()));

  // > (G x)           ; register x for preservation
  G.protect(X.get());

  // > (G)             ; still accessible -> #f
  H.collectFull();
  std::printf("(G) while x is accessible     => %s\n",
              writeToString(H, G.retrieve()).c_str());

  // > (set! x #f)     ; drop the only reference
  X = Value::nil();

  // ... after collection, the pair moves to the inaccessible group:
  H.collectFull();
  Root Y(H, G.retrieve());
  std::printf("(G) after x was dropped       => %s\n",
              writeToString(H, Y.get()).c_str());
  std::printf("(G) again                     => %s\n",
              writeToString(H, G.retrieve()).c_str());

  // The retrieved object has no special status: it is a perfectly
  // ordinary pair that was saved from deallocation so *we* can decide
  // what clean-up means. Here we simply print and re-drop it.
  std::printf("\nretrieved pair's car          => %s\n",
              writeToString(H, pairCar(Y.get())).c_str());
  Y = Value::nil();
  H.collectFull(); // Now it is really reclaimed.

  // Guardians also drain in bulk; clean-up code may allocate and even
  // collect -- it is ordinary mutator code.
  std::printf("\n== bulk clean-up ==\n");
  {
    RootVector Temp(H);
    for (int I = 0; I != 5; ++I) {
      Temp.push_back(H.cons(Value::fixnum(I), Value::nil()));
      G.protect(Temp.back());
    }
  } // All five dropped.
  H.collectFull();
  size_t N = G.drain([&](Value V) {
    std::printf("cleaning up: %s\n", writeToString(H, V).c_str());
  });
  std::printf("clean-up actions performed    => %zu\n", N);

  // Collector statistics for the curious.
  const GcTotals &T = H.totals();
  std::printf("\ncollections: %llu, objects copied: %llu, "
              "guardian saves: %llu\n",
              static_cast<unsigned long long>(T.Collections),
              static_cast<unsigned long long>(T.ObjectsCopied),
              static_cast<unsigned long long>(T.GuardianObjectsSaved));
  return 0;
}

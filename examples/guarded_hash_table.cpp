//===- examples/guarded_hash_table.cpp - Figure 1 in C++ -----------------===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
// A property cache keyed by session objects: while a session is alive,
// its cached value is reachable through the table; once the program
// drops the session, the whole association disappears -- without ever
// scanning the table. The unguarded variant run side by side shows the
// leak Figure 1's shaded lines prevent.
//
//===----------------------------------------------------------------------===//

#include "core/GuardedHashTable.h"
#include "gc/Roots.h"

#include <cstdio>

using namespace gengc;

int main() {
  Heap H;
  GuardedHashTable Guarded(H, 64);
  GuardedHashTable Unguarded(H, 64, stableValueHash, /*Guarded=*/false);

  std::printf("== Figure 1: guarded vs. unguarded hash tables ==\n\n");
  std::printf("%8s  %16s  %16s\n", "round", "guarded entries",
              "unguarded entries");

  Root PermanentKey(H, H.intern("permanent-session"));
  Guarded.access(PermanentKey.get(), Value::fixnum(0));
  Unguarded.access(PermanentKey.get(), Value::fixnum(0));

  for (int Round = 1; Round <= 8; ++Round) {
    // A burst of short-lived sessions, each caching a value.
    {
      RootVector Sessions(H);
      for (int I = 0; I != 100; ++I) {
        Sessions.push_back(H.makeUninternedSymbol(
            "session-" + std::to_string(Round) + "-" +
            std::to_string(I)));
        Guarded.access(Sessions.back(), Value::fixnum(Round * 100 + I));
        Unguarded.access(Sessions.back(),
                         Value::fixnum(Round * 100 + I));
      }
      // While alive, lookups hit.
      Value V = Guarded.lookup(Sessions[0]);
      if (V.isUnbound() || V.asFixnum() != Round * 100) {
        std::printf("lookup mismatch!\n");
        return 1;
      }
    } // All 100 sessions dropped here.
    H.collectFull();
    // The next access cleans the guarded table (cost: 100 removals,
    // not a table scan); the unguarded table just grows.
    Guarded.access(PermanentKey.get(), Value::fixnum(0));
    Unguarded.access(PermanentKey.get(), Value::fixnum(0));
    std::printf("%8d  %16zu  %16zu\n", Round, Guarded.entryCount(),
                Unguarded.entryCount());
  }

  std::printf("\nguarded table removed %llu dead associations; the "
              "unguarded table\nretains %zu broken weak entries whose "
              "values can never be reclaimed\nwithout a full scan.\n",
              static_cast<unsigned long long>(Guarded.removedTotal()),
              Unguarded.brokenEntryCount());
  H.verifyHeap();
  return 0;
}

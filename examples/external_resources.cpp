//===- examples/external_resources.cpp - malloc/free and object pools ----===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
// Two of Section 1's motivating uses:
//  * freeing external (malloc-style) memory through a Scheme header
//    guarded against collection, and
//  * recycling expensive-to-initialize objects (display bitmaps) via a
//    guardian-fed free list.
//
//===----------------------------------------------------------------------===//

#include "resource/ExternalMemory.h"
#include "resource/ResourcePool.h"
#include "gc/Roots.h"

#include <cstdio>

using namespace gengc;

int main() {
  Heap H;

  std::printf("== external memory via guarded headers ==\n\n");
  ExternalMemoryManager Malloc;
  GuardedExternalMemory GM(H, Malloc);
  {
    RootVector Held(H);
    for (int I = 0; I != 64; ++I)
      Held.push_back(GM.allocate(1024));
    std::printf("64 blocks allocated: %zu live, %zu bytes\n",
                Malloc.liveBlocks(), Malloc.liveBytes());
  } // Every header dropped; the external blocks would leak under
    // explicit management.
  H.collectFull();
  H.collectFull();
  size_t Freed = GM.reclaimDropped();
  std::printf("after collection + reclaim: freed %zu, %zu live "
              "(leak check: %s)\n\n",
              Freed, Malloc.liveBlocks(),
              Malloc.liveBlocks() == 0 ? "clean" : "LEAK");

  std::printf("== bitmap free list (expensive initialization) ==\n\n");
  ResourcePool Pool(H, /*BitmapBytes=*/64 * 1024, /*InitSweeps=*/8);
  for (int Frame = 0; Frame != 100; ++Frame) {
    // Each "frame" grabs a bitmap, uses it, and drops it.
    Root Bitmap(H, Pool.acquire());
    bytevectorData(Bitmap.get())[0] = static_cast<uint8_t>(Frame);
    // Bitmap dropped at scope exit.
    if (Frame % 10 == 9)
      H.collectFull(); // Surfacing dropped bitmaps for reuse.
  }
  std::printf("100 frames rendered: %llu expensive initializations, "
              "%llu reuses\n",
              static_cast<unsigned long long>(Pool.initializations()),
              static_cast<unsigned long long>(Pool.reuses()));
  std::printf("free list currently holds %zu recycled bitmap(s)\n",
              Pool.freeListSize());
  H.verifyHeap();
  return 0;
}

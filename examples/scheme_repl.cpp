//===- examples/scheme_repl.cpp - Run the paper's Scheme ----------------===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
// A read-eval-print loop over the collected heap. With no arguments it
// replays the paper's Section 3 transcript and Figure 1 as a scripted
// demo; `scheme_repl -i` starts an interactive session; `scheme_repl -e
// '<expr>'` evaluates one expression.
//
//===----------------------------------------------------------------------===//

#include "scheme/Interpreter.h"
#include "scheme/Printer.h"
#include "scheme/VM.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace gengc;

namespace {

/// When non-null, forms are compiled and run on the bytecode VM
/// instead of tree-walked (scheme_repl --vm ...).
VirtualMachine *ActiveVm = nullptr;

void evalAndPrint(Interpreter &I, const std::string &Src) {
  Value V;
  bool Failed;
  std::string Message;
  if (ActiveVm) {
    V = ActiveVm->evalString(Src);
    Failed = ActiveVm->hadError();
    Message = ActiveVm->errorMessage();
    ActiveVm->clearError();
  } else {
    V = I.evalString(Src);
    Failed = I.hadError();
    Message = I.errorMessage();
    I.clearError();
  }
  std::fputs(I.takeOutput().c_str(), stdout);
  if (Failed) {
    std::printf("error: %s\n", Message.c_str());
    return;
  }
  if (!V.isVoid())
    std::printf("%s\n", writeToString(I.heap(), V).c_str());
}

void runScriptedDemo(Interpreter &I) {
  struct Step {
    const char *Comment;
    const char *Code;
  };
  const Step Steps[] = {
      {"; Section 3: the basic guardian transcript",
       "(define G (make-guardian))"},
      {nullptr, "(define x (cons 'a 'b))"},
      {nullptr, "(G x)"},
      {"; x is still accessible:", "(G)"},
      {nullptr, "(set! x #f)"},
      {"; after collection:", "(collect 3)"},
      {nullptr, "(G)"},
      {nullptr, "(G)"},
      {"; Figure 1: a guarded hash table (hash parameterized as in the "
       "figure)",
       "(define make-guarded-hash-table"
       "  (lambda (hash size)"
       "    (let ([g (make-guardian)] [v (make-vector size '())])"
       "      (lambda (key value)"
       "        (let loop ([z (g)])"
       "          (if z"
       "              (begin"
       "                (let ([h (hash z size)])"
       "                  (let ([bucket (vector-ref v h)])"
       "                    (vector-set! v h (remq (assq z bucket) "
       "bucket))))"
       "                (loop (g)))))"
       "        (let ([h (hash key size)])"
       "          (let ([bucket (vector-ref v h)])"
       "            (let ([a (assq key bucket)])"
       "              (if a"
       "                  (cdr a)"
       "                  (let ([a (weak-cons key value)])"
       "                    (vector-set! v h (cons a bucket))"
       "                    (g key)"
       "                    value)))))))))"},
      {nullptr,
       "(define table (make-guarded-hash-table"
       "  (lambda (k size) (modulo (car k) size)) 8))"},
      {nullptr, "(define key (cons 1 'session))"},
      {nullptr, "(table key 'cached-value)"},
      {"; present while the key lives:", "(table key 'ignored)"},
      {nullptr, "(set! key #f)"},
      {nullptr, "(collect 3)"},
      {"; a fresh eq-distinct key gets a fresh slot (old entry removed):",
       "(table (cons 1 'session) 'new-value)"},
  };
  for (const Step &S : Steps) {
    if (S.Comment)
      std::printf("%s\n", S.Comment);
    std::printf("> %s\n", S.Code);
    evalAndPrint(I, S.Code);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  Heap H;
  Interpreter I(H);
  VirtualMachine VM(I);

  // --vm as the first argument switches the execution engine.
  if (Argc >= 2 && std::strcmp(Argv[1], "--vm") == 0) {
    ActiveVm = &VM;
    --Argc;
    ++Argv;
  }

  if (Argc >= 3 && std::strcmp(Argv[1], "-e") == 0) {
    evalAndPrint(I, Argv[2]);
    return I.hadError() ? 1 : 0;
  }

  if (Argc >= 2 && std::strcmp(Argv[1], "-i") == 0) {
    std::printf("gengc scheme repl (%s) -- guardians, weak pairs, "
                "(collect n)\nCtrl-D to exit.\n",
                ActiveVm ? "bytecode vm" : "interpreter");
    std::string Line;
    for (;;) {
      std::printf("> ");
      std::fflush(stdout);
      int C;
      Line.clear();
      while ((C = std::fgetc(stdin)) != EOF && C != '\n')
        Line.push_back(static_cast<char>(C));
      if (C == EOF && Line.empty())
        break;
      if (!Line.empty())
        evalAndPrint(I, Line);
    }
    std::printf("\n");
    return 0;
  }

  runScriptedDemo(I);
  return 0;
}

//===- examples/transport_guardian.cpp - Rehash only what moved ----------===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
// Eq (address-hashed) tables break when the collector moves keys. The
// conventional fix rehashes the whole table after every collection; the
// paper's transport guardian reports (a conservative superset of) the
// moved objects, so only those are rehashed -- and once keys age into
// old generations, minor collections cost the table nothing at all.
//
//===----------------------------------------------------------------------===//

#include "core/EqHashTable.h"
#include "gc/Roots.h"

#include <cstdio>

using namespace gengc;

int main() {
  HeapConfig C;
  C.AutoCollect = false;
  Heap H(C);

  constexpr int N = 10000;
  EqHashTable RehashAll(H, EqRehashStrategy::RehashAllAfterGc);
  EqHashTable Markers(H, EqRehashStrategy::TransportMarkers);

  RootVector Keys(H);
  for (int I = 0; I != N; ++I) {
    Keys.push_back(H.cons(Value::fixnum(I), Value::nil()));
    RehashAll.put(Keys.back(), Value::fixnum(I));
    Markers.put(Keys.back(), Value::fixnum(I));
  }

  std::printf("== eq hash tables: rehash-all vs. transport markers ==\n");
  std::printf("table size: %d keys\n\n", N);
  std::printf("%-28s  %14s  %14s\n", "phase", "rehash-all", "markers");

  auto Report = [&](const char *Phase, uint64_t A0, uint64_t M0) {
    std::printf("%-28s  %14llu  %14llu\n", Phase,
                static_cast<unsigned long long>(RehashAll.keysRehashed() -
                                                A0),
                static_cast<unsigned long long>(Markers.keysRehashed() -
                                                M0));
  };

  // Phase 1: age the keys with three successively older collections.
  uint64_t A = RehashAll.keysRehashed(), M = Markers.keysRehashed();
  for (unsigned G = 0; G != 3; ++G) {
    H.collect(G);
    RehashAll.get(Keys[0]);
    Markers.get(Keys[0]);
  }
  Report("aging (3 collections)", A, M);

  // Phase 2: ten minor collections with table probes between them.
  // Nothing old moves: rehash-all still redoes all N keys per epoch,
  // the marker table does nothing.
  A = RehashAll.keysRehashed();
  M = Markers.keysRehashed();
  for (int I = 0; I != 10; ++I) {
    H.collectMinor();
    RehashAll.get(Keys[0]);
    Markers.get(Keys[0]);
  }
  Report("10 minor GCs (keys old)", A, M);

  // Phase 3: one full collection moves everything; both pay ~N once.
  A = RehashAll.keysRehashed();
  M = Markers.keysRehashed();
  H.collectFull();
  RehashAll.get(Keys[0]);
  Markers.get(Keys[0]);
  Report("1 full GC (all keys move)", A, M);

  // Correctness spot-check.
  for (int I = 0; I < N; I += 997)
    if (RehashAll.get(Keys[static_cast<size_t>(I)]).asFixnum() != I ||
        Markers.get(Keys[static_cast<size_t>(I)]).asFixnum() != I) {
      std::printf("lookup mismatch!\n");
      return 1;
    }
  std::printf("\nall lookups verified after every phase.\n");
  H.verifyHeap();
  return 0;
}

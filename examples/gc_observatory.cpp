//===- examples/gc_observatory.cpp - Watching the collector work ---------===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
// A tour of the observability layer (gc/telemetry/) from both sides of
// the fence:
//
//   * Scheme: (collect-notify #t) turns on the one-line post-GC
//     reporter, (gc-stats) returns counters and the per-phase pause
//     breakdown, (bytes-allocated) reads the live-bytes gauge.
//   * C++: Heap::census() walks the heap for per-(generation, space)
//     occupancy and an object histogram; Heap::survivalRate() reads
//     the rolling per-generation survival window; with tracing on, the
//     event ring exports a Chrome trace_event JSON
//     (chrome://tracing, Perfetto).
//
// Run with an argument to also dump the Chrome trace there:
//   gc_observatory /tmp/gc-trace.json
//
//===----------------------------------------------------------------------===//

#include "gc/Heap.h"
#include "gc/Roots.h"
#include "gc/telemetry/Census.h"
#include "gc/telemetry/TraceExport.h"
#include "scheme/Interpreter.h"
#include "scheme/Printer.h"

#include <cstdio>

using namespace gengc;

namespace {

void eval(Interpreter &I, const char *Src) {
  std::printf("> %s\n", Src);
  Value V = I.evalString(Src);
  std::fputs(I.takeOutput().c_str(), stdout);
  if (I.hadError()) {
    std::printf("error: %s\n", I.errorMessage().c_str());
    I.clearError();
    return;
  }
  if (!V.isVoid())
    std::printf("%s\n", writeToString(I.heap(), V).c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  HeapConfig Cfg;
  Cfg.GcTrace = true; // Record events for the trace dump below.
  Heap H(Cfg);
  Interpreter I(H);

  std::printf("== gengc observatory: watching the collector work ==\n\n");

  // -- 1. The post-GC reporter (Chez's collect-notify). ---------------
  std::printf("-- (collect-notify #t): one line per collection --\n");
  eval(I, "(collect-notify #t)");
  eval(I, "(define (churn n)"
          "  (if (= n 0) 'done (begin (cons n n) (churn (- n 1)))))");
  eval(I, "(define keep 'nil)");
  eval(I, "(define (grow n)"
          "  (if (= n 0) 'done"
          "      (begin (set! keep (cons n keep)) (grow (- n 1)))))");
  eval(I, "(grow 5000)");
  eval(I, "(churn 20000)");
  eval(I, "(collect 0)");
  eval(I, "(collect 1)");
  eval(I, "(collect-notify #f)");

  // -- 2. (gc-stats): counters and the phase breakdown. ---------------
  std::printf("\n-- (gc-stats): where the last pause went --\n");
  eval(I, "(bytes-allocated)");
  eval(I, "(assq 'collections (gc-stats))");
  eval(I, "(assq 'last-duration-nanos (gc-stats))");
  eval(I, "(assq 'last-phase-nanos (gc-stats))");
  eval(I, "(assq 'generations (gc-stats))");

  // -- 3. The C++ side: census, survival rates, totals. ---------------
  std::printf("\n-- Heap::census(): occupancy by generation and kind --\n");
  HeapCensus C = H.census();
  for (unsigned G = 0; G != C.Generations; ++G) {
    uint64_t Bytes = 0, Segments = 0;
    for (unsigned Sp = 0; Sp != NumSpaces; ++Sp) {
      Bytes += C.Cells[G][Sp].UsedBytes;
      Segments += C.Cells[G][Sp].SegmentCount;
    }
    if (Segments == 0)
      continue;
    const double Rate = H.survivalRate(G);
    char RateText[32];
    if (Rate < 0)
      std::snprintf(RateText, sizeof RateText, "(no samples)");
    else
      std::snprintf(RateText, sizeof RateText, "%.3f", Rate);
    std::printf("  gen %u: %llu segments, %llu bytes, survival %s\n", G,
                static_cast<unsigned long long>(Segments),
                static_cast<unsigned long long>(Bytes), RateText);
  }
  std::printf("  histogram:");
  for (unsigned K = 0; K != NumCensusKinds; ++K)
    if (C.KindCounts[K] != 0)
      std::printf(" %s=%llu", censusKindName(static_cast<CensusKind>(K)),
                  static_cast<unsigned long long>(C.KindCounts[K]));
  std::printf("\n");

  const GcTotals &T = H.totals();
  std::printf("\n  totals: %llu collections, %llu bytes copied, "
              "%llu objects promoted, %.3f ms total pause\n",
              static_cast<unsigned long long>(T.Collections),
              static_cast<unsigned long long>(T.BytesCopied),
              static_cast<unsigned long long>(T.ObjectsPromoted),
              static_cast<double>(T.DurationNanos) / 1e6);

  // -- 4. The event ring and the Chrome trace. ------------------------
  std::printf("\n-- event ring: %zu events retained (%llu recorded) --\n",
              H.telemetry().Ring.size(),
              static_cast<unsigned long long>(
                  H.telemetry().Ring.recorded()));
  if (Argc > 1) {
    if (dumpChromeTraceToFile(H.telemetry(), Argv[1]))
      std::printf("Chrome trace written to %s "
                  "(load in chrome://tracing or Perfetto)\n",
                  Argv[1]);
  } else {
    std::printf("(pass a path argument to dump a Chrome trace JSON)\n");
  }
  return 0;
}

//===- examples/guarded_ports.cpp - Dropped-port clean-up ----------------===//
//
// Part of the gengc project: a reproduction of "Guardians in a
// Generation-Based Garbage Collector" (Dybvig, Bruggeman, Eby, PLDI 1993).
//
// The paper's motivating scenario: "a port may not be closed explicitly
// by a user program before the last reference to it is dropped. This can
// tie up system resources and may result in data associated with output
// ports remaining unwritten until the system exits." Guarded open
// operations fix this without finalizer restrictions.
//
//===----------------------------------------------------------------------===//

#include "io/GuardedPorts.h"
#include "gc/Roots.h"

#include <cstdio>

using namespace gengc;

// A "report generator" that carelessly drops its port on an early
// return -- the nonlocal-exit pattern the paper worries about.
static void writeReportCarelessly(Heap &H, GuardedPortSystem &GP,
                                  int Id, bool BailOutEarly) {
  Root Port(H, GP.openOutput("report-" + std::to_string(Id) + ".txt"));
  GP.writeString(Port.get(), "header\n");
  if (BailOutEarly)
    return; // Port dropped, buffer unflushed, file descriptor leaked...
  GP.writeString(Port.get(), "body\n");
  GP.close(Port.get());
}

int main() {
  Heap H;
  MemoryFileSystem FS;
  PortTable Ports(FS, /*BufferSize=*/4096);
  GuardedPortSystem GP(H, Ports);

  std::printf("== guarded ports: rescuing dropped output ports ==\n\n");

  // Wire clean-up to the collector, as the end of Section 3 suggests:
  // (collect-request-handler (lambda () (collect) (close-dropped-ports)))
  GP.installCollectRequestHandler();

  for (int I = 0; I != 10; ++I)
    writeReportCarelessly(H, GP, I, /*BailOutEarly=*/I % 2 == 0);

  std::printf("after careless writers: %zu port(s) still open\n",
              Ports.openPortCount());

  // Opening one more port triggers close-dropped-ports (after the
  // collector has proven the drops).
  H.collectFull();
  H.collectFull(); // Handles promoted once before dying.
  Root Fresh(H, GP.openOutput("fresh.txt"));
  std::printf("after guarded open:     %zu port(s) still open "
              "(the fresh one)\n",
              Ports.openPortCount());
  std::printf("dropped ports closed so far: %llu\n",
              static_cast<unsigned long long>(GP.droppedPortsClosed()));

  // Every half-written report was flushed on clean-up: the buffered
  // "header" line reached the file system.
  std::string Contents;
  FS.read("report-0.txt", Contents);
  std::printf("report-0.txt contents:  \"%s\" (%zu bytes, flushed at "
              "clean-up)\n",
              Contents == "header\n" ? "header\\n" : Contents.c_str(),
              Contents.size());

  GP.close(Fresh.get());
  GP.exitCleanup(); // (guarded-exit)
  std::printf("after guarded-exit:     %zu port(s) open, "
              "%llu flushes total\n",
              Ports.openPortCount(),
              static_cast<unsigned long long>(Ports.totalFlushes()));
  return 0;
}
